package gpucounters

import (
	"testing"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

func spec() perfmodel.GPUSpec {
	s := perfmodel.TeslaC2050()
	s.ContextInit = 0
	s.KernelDispatch = 0
	return s
}

// runKernel launches one kernel with the given cost and geometry and
// returns the attached component.
func runKernel(t *testing.T, cost perfmodel.KernelCost, grid, block [3]int, register bool) *Component {
	t.Helper()
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, spec())
	c := Attach(dev)
	if register {
		c.RegisterKernel("k", cost)
	}
	e.Spawn("host", func(p *des.Proc) {
		op := dev.LaunchKernel(dev.DefaultStream(), "k", cost, grid, block, nil)
		p.Wait(op.Done())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDerivedCountersFromCostModel(t *testing.T) {
	cost := perfmodel.KernelCost{FLOPs: 1e9, MemBytes: 1e8}
	c := runKernel(t, cost, [3]int{100, 1, 1}, [3]int{128, 1, 1}, true)
	if len(c.Samples()) != 1 {
		t.Fatalf("samples = %d", len(c.Samples()))
	}
	s := c.Samples()[0]
	if s.Values[FlopCountDP] != 1e9 {
		t.Errorf("flop_count_dp = %d, want 1e9", s.Values[FlopCountDP])
	}
	if s.Values[FlopCountSP] != 0 {
		t.Errorf("flop_count_sp = %d, want 0 for DP kernel", s.Values[FlopCountSP])
	}
	if got := s.Values[DramReadBytes] + s.Values[DramWriteB]; got != 1e8 {
		t.Errorf("dram traffic = %d, want 1e8", got)
	}
	// 100 blocks x 128 threads = 12800 threads = 400 warps.
	if s.Values[WarpsLaunched] != 400 {
		t.Errorf("warps = %d, want 400", s.Values[WarpsLaunched])
	}
	if s.Values[KernelCount] != 1 {
		t.Errorf("kernel count = %d", s.Values[KernelCount])
	}
	if s.Values[ActiveCycles] == 0 {
		t.Error("active cycles zero")
	}
}

func TestSPCounter(t *testing.T) {
	c := runKernel(t, perfmodel.KernelCost{FLOPs: 5e8, SP: true}, [3]int{1, 1, 1}, [3]int{32, 1, 1}, true)
	s := c.Samples()[0]
	if s.Values[FlopCountSP] != 5e8 || s.Values[FlopCountDP] != 0 {
		t.Errorf("SP/DP = %d/%d", s.Values[FlopCountSP], s.Values[FlopCountDP])
	}
}

func TestUnregisteredKernelEstimates(t *testing.T) {
	// Fixed-duration kernel without a registered cost still yields
	// nonzero, duration-derived counters.
	c := runKernel(t, perfmodel.KernelCost{Fixed: 10 * time.Millisecond}, [3]int{1, 1, 1}, [3]int{64, 1, 1}, false)
	s := c.Samples()[0]
	if s.Values[FlopCountDP] == 0 {
		t.Error("estimated flops zero")
	}
	if s.Values[ActiveCycles] == 0 {
		t.Error("active cycles zero")
	}
}

func TestOccupancyBounds(t *testing.T) {
	// A tiny launch has low occupancy; a huge one saturates at 100%.
	small := runKernel(t, perfmodel.KernelCost{FLOPs: 1}, [3]int{1, 1, 1}, [3]int{32, 1, 1}, true)
	big := runKernel(t, perfmodel.KernelCost{FLOPs: 1}, [3]int{1024, 1, 1}, [3]int{256, 1, 1}, true)
	so := small.Samples()[0].Values[Occupancy]
	bo := big.Samples()[0].Values[Occupancy]
	if so >= bo {
		t.Errorf("occupancy small %d >= big %d", so, bo)
	}
	if bo != 100*100 {
		t.Errorf("big occupancy = %d, want 10000 (100%%)", bo)
	}
}

func TestEventSetLifecycle(t *testing.T) {
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, spec())
	c := Attach(dev)
	cost := perfmodel.KernelCost{FLOPs: 1e6}
	c.RegisterKernel("k", cost)

	es, err := c.NewEventSet(FlopCountDP, KernelCount, Occupancy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := es.Read(); err == nil {
		t.Error("read before start accepted")
	}
	if err := es.Start(); err != nil {
		t.Fatal(err)
	}
	if err := es.Start(); err == nil {
		t.Error("double start accepted")
	}

	e.Spawn("host", func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			op := dev.LaunchKernel(dev.DefaultStream(), "k", cost, [3]int{4, 1, 1}, [3]int{64, 1, 1}, nil)
			p.Wait(op.Done())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	vals, err := es.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 3e6 {
		t.Errorf("flops = %d, want 3e6", vals[0])
	}
	if vals[1] != 3 {
		t.Errorf("kernel count = %d, want 3", vals[1])
	}
	if vals[2] == 0 || vals[2] > 10000 {
		t.Errorf("avg occupancy = %d out of range", vals[2])
	}
	if _, err := es.Read(); err == nil {
		t.Error("read after stop accepted")
	}
}

func TestEventSetValidation(t *testing.T) {
	e := des.NewEngine()
	c := Attach(gpusim.NewDevice(e, spec()))
	if _, err := c.NewEventSet(); err == nil {
		t.Error("empty event set accepted")
	}
	if _, err := c.NewEventSet(Counter("bogus")); err == nil {
		t.Error("unknown counter accepted")
	}
}

func TestPerKernelTotals(t *testing.T) {
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, spec())
	c := Attach(dev)
	ca := perfmodel.KernelCost{FLOPs: 1e6}
	cb := perfmodel.KernelCost{FLOPs: 2e6}
	c.RegisterKernel("a", ca)
	c.RegisterKernel("b", cb)
	e.Spawn("host", func(p *des.Proc) {
		var op *gpusim.Op
		for i := 0; i < 2; i++ {
			op = dev.LaunchKernel(dev.DefaultStream(), "a", ca, [3]int{1, 1, 1}, [3]int{32, 1, 1}, nil)
		}
		op = dev.LaunchKernel(dev.DefaultStream(), "b", cb, [3]int{1, 1, 1}, [3]int{32, 1, 1}, nil)
		p.Wait(op.Done())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	totals := c.PerKernelTotals()
	if len(totals) != 2 || totals[0].Kernel != "a" || totals[1].Kernel != "b" {
		t.Fatalf("totals = %+v", totals)
	}
	if totals[0].Invocations != 2 || totals[0].Values[FlopCountDP] != 2e6 {
		t.Errorf("kernel a: %+v", totals[0])
	}
	if totals[1].Values[FlopCountDP] != 2e6 {
		t.Errorf("kernel b: %+v", totals[1])
	}
}

func TestChainsPriorCallback(t *testing.T) {
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, spec())
	var prior int
	dev.OnKernelComplete = func(gpusim.KernelRecord) { prior++ }
	c := Attach(dev)
	e.Spawn("host", func(p *des.Proc) {
		op := dev.LaunchKernel(dev.DefaultStream(), "k", perfmodel.KernelCost{Fixed: time.Millisecond}, [3]int{}, [3]int{}, nil)
		p.Wait(op.Done())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if prior != 1 || len(c.Samples()) != 1 {
		t.Errorf("chain broken: prior=%d samples=%d", prior, len(c.Samples()))
	}
}
