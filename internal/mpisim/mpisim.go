// Package mpisim simulates an MPI library over the discrete-event engine.
//
// It is functional — messages really carry bytes, reductions really reduce
// — and timed by the Hockney network model in internal/perfmodel, with a
// rank-to-node topology so that intra-node communication uses the
// shared-memory path. Point-to-point messaging uses eager matching with
// per-(source,destination) ordering; collectives use analytic cost models
// of the standard algorithms (binomial trees, recursive doubling, rings)
// with a rendezvous barrier, which is the usual approach in cluster
// simulators and is what the paper's host-side MPI timing observes.
//
// Applications program against the Comm interface so that IPM can
// interpose a monitoring decorator (internal/ipmmpi), mirroring the PMPI
// profiling interface of a real MPI.
package mpisim

import (
	"fmt"
	"math"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/perfmodel"
)

// Wildcards for Recv/Irecv source and tag matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Count  int // bytes received
}

// Request is a handle to an outstanding nonblocking operation.
type Request struct {
	sig    *des.Signal
	status Status
	err    error
}

// Comm is the MPI communicator interface applications program against —
// the interposition seam for IPM's MPI monitoring.
type Comm interface {
	Rank() int
	Size() int
	Proc() *des.Proc

	Send(data []byte, dest, tag int) error
	Recv(buf []byte, source, tag int) (Status, error)
	Isend(data []byte, dest, tag int) (*Request, error)
	Irecv(buf []byte, source, tag int) (*Request, error)
	Wait(req *Request) (Status, error)
	Waitall(reqs []*Request) error

	Barrier() error
	Bcast(data []byte, root int) error
	Reduce(send, recv []byte, op Op, root int) error
	Allreduce(send, recv []byte, op Op) error
	Gather(send, recv []byte, root int) error
	Allgather(send, recv []byte) error
	Scatter(send, recv []byte, root int) error
	Alltoall(send, recv []byte) error
}

// World is a set of ranks sharing a network. Create one per simulated job.
type World struct {
	eng          *des.Engine
	size         int
	net          perfmodel.NetSpec
	ranksPerNode int

	mailbox  [][]*message    // per destination rank
	posted   [][]*recvReq    // per destination rank
	recvTail []time.Duration // per-rank NIC availability (incast serialisation)

	colls    map[collKey]*collState
	nextColl int

	failed    []bool // nil until the first failure
	nFailed   int
	firstFail int
}

// Config describes the parallel job layout.
type Config struct {
	Size         int
	Net          perfmodel.NetSpec
	RanksPerNode int // default 1
}

// NewWorld creates a world with the given layout on the engine.
func NewWorld(eng *des.Engine, cfg Config) (*World, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("mpisim: world size %d", cfg.Size)
	}
	if cfg.RanksPerNode <= 0 {
		cfg.RanksPerNode = 1
	}
	return &World{
		eng:          eng,
		size:         cfg.Size,
		net:          cfg.Net,
		ranksPerNode: cfg.RanksPerNode,
		mailbox:      make([][]*message, cfg.Size),
		posted:       make([][]*recvReq, cfg.Size),
		recvTail:     make([]time.Duration, cfg.Size),
		colls:        make(map[collKey]*collState),
	}, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// NodeOf returns the node hosting a rank (block distribution).
func (w *World) NodeOf(rank int) int { return rank / w.ranksPerNode }

// Nodes returns the number of nodes the job spans.
func (w *World) Nodes() int { return (w.size + w.ranksPerNode - 1) / w.ranksPerNode }

func (w *World) sameNode(a, b int) bool { return w.NodeOf(a) == w.NodeOf(b) }

// Attach binds rank to a spawned process and returns its communicator.
// The caller is responsible for spawning one process per rank and running
// the engine; internal/cluster provides the usual harness.
func (w *World) Attach(rank int, proc *des.Proc) (Comm, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("mpisim: rank %d out of range [0,%d)", rank, w.size)
	}
	return &comm{w: w, rank: rank, proc: proc, seq: make(map[string]int)}, nil
}

// comm is the concrete communicator for one rank.
type comm struct {
	w    *World
	rank int
	proc *des.Proc
	seq  map[string]int // per-collective-kind sequence numbers
}

var _ Comm = (*comm)(nil)

func (c *comm) Rank() int       { return c.rank }
func (c *comm) Size() int       { return c.w.size }
func (c *comm) Proc() *des.Proc { return c.proc }

func log2ceil(p int) int {
	if p <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(p))))
}

func (w *World) p2pCost(n int64, src, dst int) time.Duration {
	return w.net.PointToPoint(n, w.sameNode(src, dst))
}
