package mpisim

import (
	"fmt"
	"time"

	"ipmgo/internal/des"
)

// collKey identifies one matching collective instance: all ranks' n-th
// call of a given collective kind meet in the same instance, mirroring
// MPI's ordered-collective matching rule.
type collKey struct {
	kind string
	seq  int
}

// collState is the rendezvous for one collective instance.
type collState struct {
	arrived  int
	maxT     time.Duration
	contribs [][]byte
	root     int
	op       Op
	result   []byte
	done     []*des.Signal // per-rank completion
	err      error
}

// enterColl registers the calling rank's contribution and blocks until the
// collective completes for this rank. finish computes, once all ranks have
// arrived, the result buffer and the per-rank completion offsets relative
// to the arrival of the last rank.
func (c *comm) enterColl(kind string, contrib []byte, root int, op Op,
	finish func(st *collState) []time.Duration) (*collState, error) {

	w := c.w
	// A broken communicator fails collectives immediately: survivors must
	// not rendezvous with ranks that can never arrive.
	if err := w.failedErr(); err != nil {
		return nil, err
	}
	seq := c.seq[kind]
	c.seq[kind] = seq + 1
	key := collKey{kind, seq}
	st, ok := w.colls[key]
	if !ok {
		st = &collState{
			contribs: make([][]byte, w.size),
			root:     root,
			op:       op,
			done:     make([]*des.Signal, w.size),
		}
		for i := range st.done {
			st.done[i] = w.eng.NewSignal(kind)
		}
		w.colls[key] = st
	}
	if st.root != root {
		st.err = fmt.Errorf("mpisim: %s root mismatch: %d vs %d", kind, st.root, root)
	}
	st.contribs[c.rank] = contrib
	st.arrived++
	if now := c.proc.Now(); now > st.maxT {
		st.maxT = now
	}
	if st.arrived == w.size {
		delete(w.colls, key)
		offsets := finish(st)
		for i, off := range offsets {
			st.done[i].FireAt(st.maxT + off)
		}
	}
	c.proc.Wait(st.done[c.rank])
	return st, st.err
}

// uniform returns the same completion offset for every rank.
func (w *World) uniform(d time.Duration) []time.Duration {
	out := make([]time.Duration, w.size)
	for i := range out {
		out[i] = d
	}
	return out
}

// spansNodes reports whether the job crosses node boundaries, selecting
// the network vs shared-memory cost parameters for collectives.
func (w *World) spansNodes() bool { return w.Nodes() > 1 }

func (w *World) hop(n int64) time.Duration {
	return w.net.PointToPoint(n, !w.spansNodes())
}

// reduceCompute models the local arithmetic of combining p vectors of n
// bytes down a tree (log2 p stages at ~4 GB/s).
func reduceCompute(n int64, p int) time.Duration {
	sec := float64(n) * float64(log2ceil(p)) / 4e9
	return time.Duration(sec * float64(time.Second))
}

// Barrier blocks until all ranks arrive (dissemination algorithm:
// ceil(log2 p) latency-bound rounds).
func (c *comm) Barrier() error {
	w := c.w
	cost := time.Duration(log2ceil(w.size)) * w.hop(0)
	_, err := c.enterColl("barrier", nil, 0, nil, func(st *collState) []time.Duration {
		return w.uniform(cost)
	})
	return err
}

// Bcast broadcasts root's buffer to all ranks (binomial tree).
func (c *comm) Bcast(data []byte, root int) error {
	if err := c.checkRank(root, false); err != nil {
		return err
	}
	w := c.w
	st, err := c.enterColl("bcast", data, root, nil, func(st *collState) []time.Duration {
		n := int64(len(st.contribs[st.root]))
		st.result = append([]byte(nil), st.contribs[st.root]...)
		return w.uniform(time.Duration(log2ceil(w.size)) * w.hop(n))
	})
	if err != nil {
		return err
	}
	if c.rank != root {
		copy(data, st.result)
	}
	return nil
}

// Reduce combines all ranks' send buffers with op into recv at root
// (binomial tree). recv may be nil on non-root ranks.
func (c *comm) Reduce(send, recv []byte, op Op, root int) error {
	if err := c.checkRank(root, false); err != nil {
		return err
	}
	w := c.w
	st, err := c.enterColl("reduce", send, root, op, func(st *collState) []time.Duration {
		reduceContribs(st)
		n := int64(len(send))
		cost := time.Duration(log2ceil(w.size))*w.hop(n) + reduceCompute(n, w.size)
		return w.uniform(cost)
	})
	if err != nil {
		return err
	}
	if c.rank == root {
		copy(recv, st.result)
	}
	return nil
}

// Allreduce combines all ranks' send buffers with op into every recv
// (recursive doubling).
func (c *comm) Allreduce(send, recv []byte, op Op) error {
	w := c.w
	st, err := c.enterColl("allreduce", send, 0, op, func(st *collState) []time.Duration {
		reduceContribs(st)
		n := int64(len(send))
		cost := time.Duration(log2ceil(w.size))*w.hop(n) + reduceCompute(n, w.size)
		return w.uniform(cost)
	})
	if err != nil {
		return err
	}
	copy(recv, st.result)
	return nil
}

func reduceContribs(st *collState) {
	st.result = append([]byte(nil), st.contribs[0]...)
	for i := 1; i < len(st.contribs); i++ {
		st.op.Reduce(st.result, st.contribs[i])
	}
}

// Gather concatenates all ranks' send buffers into recv at root, in rank
// order. The root drains p-1 incoming flows through one endpoint, so its
// cost grows super-linearly with the job size via the contention model —
// the behaviour behind the MPI_Gather blow-up in the paper's Fig. 10.
func (c *comm) Gather(send, recv []byte, root int) error {
	if err := c.checkRank(root, false); err != nil {
		return err
	}
	w := c.w
	st, err := c.enterColl("gather", send, root, nil, func(st *collState) []time.Duration {
		// The result is assembled lazily by the root from contribs, so a
		// gather whose root discards the data costs no assembly.
		n := int64(len(send))
		out := make([]time.Duration, w.size)
		flows := w.size - 1
		var rootCost time.Duration
		for i := 0; i < flows; i++ {
			rootCost += w.net.Contended(n, !w.spansNodes(), flows)
		}
		leaf := w.hop(n)
		for i := range out {
			if i == st.root {
				out[i] = rootCost
			} else {
				out[i] = leaf
			}
		}
		return out
	})
	if err != nil {
		return err
	}
	if c.rank == root && recv != nil {
		off := 0
		for _, b := range st.contribs {
			off += copy(recv[off:], b)
		}
	}
	return nil
}

// Allgather concatenates all ranks' send buffers into every recv (ring
// algorithm: p-1 steps of n bytes).
func (c *comm) Allgather(send, recv []byte) error {
	w := c.w
	st, err := c.enterColl("allgather", send, 0, nil, func(st *collState) []time.Duration {
		st.result = concat(st.contribs)
		n := int64(len(send))
		return w.uniform(time.Duration(w.size-1) * w.hop(n))
	})
	if err != nil {
		return err
	}
	copy(recv, st.result)
	return nil
}

// Scatter splits root's send buffer into size equal chunks and delivers
// chunk i to rank i's recv.
func (c *comm) Scatter(send, recv []byte, root int) error {
	if err := c.checkRank(root, false); err != nil {
		return err
	}
	w := c.w
	st, err := c.enterColl("scatter", send, root, nil, func(st *collState) []time.Duration {
		st.result = append([]byte(nil), st.contribs[st.root]...)
		chunk := int64(len(st.result) / w.size)
		out := make([]time.Duration, w.size)
		flows := w.size - 1
		var rootCost time.Duration
		for i := 0; i < flows; i++ {
			rootCost += w.net.Contended(chunk, !w.spansNodes(), flows)
		}
		leaf := w.hop(chunk)
		for i := range out {
			if i == st.root {
				out[i] = rootCost
			} else {
				out[i] = leaf
			}
		}
		return out
	})
	if err != nil {
		return err
	}
	chunk := len(st.result) / w.size
	copy(recv, st.result[c.rank*chunk:(c.rank+1)*chunk])
	return nil
}

// Alltoall sends chunk j of each rank i's send buffer to rank j; rank j
// receives the chunks in rank order (pairwise exchange with contention).
func (c *comm) Alltoall(send, recv []byte) error {
	w := c.w
	st, err := c.enterColl("alltoall", send, 0, nil, func(st *collState) []time.Duration {
		chunk := len(st.contribs[0]) / w.size
		result := make([]byte, w.size*w.size*chunk)
		for i, contrib := range st.contribs {
			for j := 0; j < w.size; j++ {
				copy(result[(j*w.size+i)*chunk:], contrib[j*chunk:(j+1)*chunk])
			}
		}
		st.result = result
		cost := time.Duration(w.size-1) * w.net.Contended(int64(chunk), !w.spansNodes(), w.size-1)
		return w.uniform(cost)
	})
	if err != nil {
		return err
	}
	per := len(st.result) / w.size
	copy(recv, st.result[c.rank*per:(c.rank+1)*per])
	return nil
}

func concat(bufs [][]byte) []byte {
	var n int
	for _, b := range bufs {
		n += len(b)
	}
	out := make([]byte, 0, n)
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}
