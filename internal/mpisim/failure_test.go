package mpisim

import (
	"errors"
	"testing"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/perfmodel"
)

// failWorld spawns size ranks running fn and marks victim failed at
// failAt. It returns the engine error.
func failWorld(t *testing.T, size, victim int, failAt time.Duration, fn func(c Comm) error) error {
	t.Helper()
	eng := des.NewEngine()
	w, err := NewWorld(eng, Config{Size: size, Net: perfmodel.QDRInfiniBand()})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < size; rank++ {
		rank := rank
		eng.Spawn("rank", func(p *des.Proc) {
			c, err := w.Attach(rank, p)
			if err != nil {
				t.Error(err)
				return
			}
			if rank == victim {
				// The victim idles past its death time; the harness layer is
				// what actually kills the process, here we only model the
				// communicator's view.
				p.Sleep(10 * time.Second)
				return
			}
			if err := fn(c); err != nil && !errors.Is(err, ErrRankFailed) {
				t.Errorf("rank %d: unexpected error %v", rank, err)
			}
		})
	}
	eng.Schedule(failAt, func() { w.MarkFailed(victim) })
	return eng.RunFor(time.Minute)
}

// TestMarkFailedBreaksPendingCollective checks ranks already blocked in a
// collective wake with RankFailedError when a peer dies.
func TestMarkFailedBreaksPendingCollective(t *testing.T) {
	gotErr := 0
	err := failWorld(t, 4, 2, 50*time.Millisecond, func(c Comm) error {
		err := c.Barrier()
		if errors.Is(err, ErrRankFailed) {
			gotErr++
		}
		return err
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	if gotErr != 3 {
		t.Fatalf("got %d RankFailedError, want 3", gotErr)
	}
}

// TestCollectiveAfterFailureFastFails checks collectives entered after
// the failure error out instead of recreating a rendezvous that can never
// complete.
func TestCollectiveAfterFailureFastFails(t *testing.T) {
	err := failWorld(t, 4, 1, 0, func(c Comm) error {
		c.Proc().Sleep(100 * time.Millisecond) // failure strikes first
		buf := make([]byte, 8)
		err := c.Allreduce(buf, buf, OpSum)
		if !errors.Is(err, ErrRankFailed) {
			t.Errorf("rank %d: Allreduce after failure = %v, want RankFailedError", c.Rank(), err)
		}
		var rfe *RankFailedError
		if errors.As(err, &rfe) && rfe.Rank != 1 {
			t.Errorf("failure attributed to rank %d, want 1", rfe.Rank)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
}

// TestP2PWithDeadRank checks point-to-point semantics around a dead peer:
// posted receives fail, new receives from the dead source fail, sends to
// it fail, and messages it sent before dying are still deliverable.
func TestP2PWithDeadRank(t *testing.T) {
	eng := des.NewEngine()
	w, err := NewWorld(eng, Config{Size: 2, Net: perfmodel.QDRInfiniBand()})
	if err != nil {
		t.Fatal(err)
	}
	eng.Spawn("rank0", func(p *des.Proc) {
		c, _ := w.Attach(0, p)
		buf := make([]byte, 8)
		// Posted before death, no message in flight: fails at death time.
		_, err := c.Recv(buf, 1, 7)
		if !errors.Is(err, ErrRankFailed) {
			t.Errorf("pending recv = %v, want RankFailedError", err)
		}
		// The early message rank 1 sent before dying is still delivered.
		if _, err := c.Recv(buf, 1, 9); err != nil {
			t.Errorf("recv of pre-death message: %v", err)
		}
		// Posted after death with nothing queued: immediate failure.
		if _, err := c.Recv(buf, 1, 11); !errors.Is(err, ErrRankFailed) {
			t.Errorf("post-death recv = %v, want RankFailedError", err)
		}
		if err := c.Send(buf, 1, 0); !errors.Is(err, ErrRankFailed) {
			t.Errorf("send to dead rank = %v, want RankFailedError", err)
		}
		if _, err := c.Isend(buf, 1, 0); !errors.Is(err, ErrRankFailed) {
			t.Errorf("isend to dead rank = %v, want RankFailedError", err)
		}
	})
	eng.Spawn("rank1", func(p *des.Proc) {
		c, _ := w.Attach(1, p)
		// Send one message on a tag rank 0 only receives after the death.
		if _, err := c.Isend(make([]byte, 8), 0, 9); err != nil {
			t.Error(err)
		}
		p.Sleep(time.Second)
	})
	eng.Schedule(100*time.Millisecond, func() { w.MarkFailed(1) })
	if err := eng.RunFor(time.Minute); err != nil {
		t.Fatalf("engine: %v", err)
	}
	if !w.Failed(1) || w.Failed(0) || w.FailedCount() != 1 {
		t.Fatalf("failure bookkeeping wrong: failed(1)=%v failed(0)=%v count=%d",
			w.Failed(1), w.Failed(0), w.FailedCount())
	}
	// Idempotent.
	w.MarkFailed(1)
	if w.FailedCount() != 1 {
		t.Fatal("MarkFailed not idempotent")
	}
}
