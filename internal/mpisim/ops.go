package mpisim

import (
	"encoding/binary"
	"math"
)

// Op is a reduction operator over byte buffers. Implementations must be
// associative and act elementwise so that the simulator may reduce
// contributions in rank order.
type Op interface {
	// Reduce combines in into acc in place. Buffers have equal length.
	Reduce(acc, in []byte)
	// Name returns the MPI-style operator name (for diagnostics).
	Name() string
}

// float64Op reduces buffers interpreted as little-endian float64 vectors.
type float64Op struct {
	name string
	fn   func(a, b float64) float64
}

func (o float64Op) Name() string { return o.name }

func (o float64Op) Reduce(acc, in []byte) {
	n := len(acc) / 8
	for i := 0; i < n; i++ {
		a := math.Float64frombits(binary.LittleEndian.Uint64(acc[i*8:]))
		b := math.Float64frombits(binary.LittleEndian.Uint64(in[i*8:]))
		binary.LittleEndian.PutUint64(acc[i*8:], math.Float64bits(o.fn(a, b)))
	}
}

// Predefined reduction operators over float64 vectors.
var (
	OpSum Op = float64Op{"MPI_SUM", func(a, b float64) float64 { return a + b }}
	OpMax Op = float64Op{"MPI_MAX", math.Max}
	OpMin Op = float64Op{"MPI_MIN", math.Min}
)

// borOp is a bitwise-or reduction over raw bytes.
type borOp struct{}

func (borOp) Name() string { return "MPI_BOR" }
func (borOp) Reduce(acc, in []byte) {
	for i := range acc {
		acc[i] |= in[i]
	}
}

// OpBOr is the bitwise-or reduction over raw bytes.
var OpBOr Op = borOp{}

// Float64Bytes converts a float64 slice to its wire representation.
func Float64Bytes(xs []float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
	return b
}

// BytesFloat64 converts a wire buffer back to float64 values.
func BytesFloat64(b []byte) []float64 {
	xs := make([]float64, len(b)/8)
	for i := range xs {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return xs
}
