package mpisim

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/perfmodel"
)

// runWorld spawns size ranks running fn and returns the final virtual time.
func runWorld(t *testing.T, size, ranksPerNode int, fn func(c Comm)) time.Duration {
	t.Helper()
	e := des.NewEngine()
	w, err := NewWorld(e, Config{Size: size, Net: perfmodel.QDRInfiniBand(), RanksPerNode: ranksPerNode})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < size; r++ {
		r := r
		e.Spawn(fmt.Sprintf("rank%d", r), func(p *des.Proc) {
			c, err := w.Attach(r, p)
			if err != nil {
				t.Error(err)
				return
			}
			fn(c)
		})
	}
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	return e.Now()
}

func TestSendRecvRoundTrip(t *testing.T) {
	runWorld(t, 2, 1, func(c Comm) {
		if c.Rank() == 0 {
			if err := c.Send([]byte("hello"), 1, 7); err != nil {
				t.Error(err)
			}
		} else {
			buf := make([]byte, 5)
			st, err := c.Recv(buf, 0, 7)
			if err != nil {
				t.Error(err)
			}
			if string(buf) != "hello" || st.Source != 0 || st.Tag != 7 || st.Count != 5 {
				t.Errorf("recv = %q status=%+v", buf, st)
			}
		}
	})
}

func TestMessageOrderingFIFO(t *testing.T) {
	runWorld(t, 2, 1, func(c Comm) {
		if c.Rank() == 0 {
			c.Send([]byte{1}, 1, 0)
			c.Send([]byte{2}, 1, 0)
		} else {
			buf := make([]byte, 1)
			c.Recv(buf, 0, 0)
			first := buf[0]
			c.Recv(buf, 0, 0)
			if first != 1 || buf[0] != 2 {
				t.Errorf("messages reordered: %d then %d", first, buf[0])
			}
		}
	})
}

func TestWildcardRecv(t *testing.T) {
	runWorld(t, 3, 1, func(c Comm) {
		switch c.Rank() {
		case 1:
			c.Send([]byte{42}, 0, 9)
		case 0:
			buf := make([]byte, 1)
			st, err := c.Recv(buf, AnySource, AnyTag)
			if err != nil {
				t.Error(err)
			}
			if st.Source != 1 || st.Tag != 9 || buf[0] != 42 {
				t.Errorf("wildcard recv status=%+v data=%v", st, buf)
			}
		}
	})
}

func TestIsendIrecvWaitall(t *testing.T) {
	runWorld(t, 2, 1, func(c Comm) {
		if c.Rank() == 0 {
			var reqs []*Request
			for i := 0; i < 4; i++ {
				r, err := c.Isend([]byte{byte(i)}, 1, i)
				if err != nil {
					t.Error(err)
				}
				reqs = append(reqs, r)
			}
			if err := c.Waitall(reqs); err != nil {
				t.Error(err)
			}
		} else {
			// Post receives in reverse tag order; matching is by tag.
			bufs := make([][]byte, 4)
			var reqs []*Request
			for i := 3; i >= 0; i-- {
				bufs[i] = make([]byte, 1)
				r, err := c.Irecv(bufs[i], 0, i)
				if err != nil {
					t.Error(err)
				}
				reqs = append(reqs, r)
			}
			if err := c.Waitall(reqs); err != nil {
				t.Error(err)
			}
			for i := 0; i < 4; i++ {
				if bufs[i][0] != byte(i) {
					t.Errorf("tag %d got %d", i, bufs[i][0])
				}
			}
		}
	})
}

func TestIsendBufferReuse(t *testing.T) {
	runWorld(t, 2, 1, func(c Comm) {
		if c.Rank() == 0 {
			buf := []byte{7}
			r, _ := c.Isend(buf, 1, 0)
			buf[0] = 99 // reuse immediately; message must carry 7
			c.Wait(r)
		} else {
			buf := make([]byte, 1)
			c.Recv(buf, 0, 0)
			if buf[0] != 7 {
				t.Errorf("Isend did not copy: got %d", buf[0])
			}
		}
	})
}

func TestTruncationError(t *testing.T) {
	runWorld(t, 2, 1, func(c Comm) {
		if c.Rank() == 0 {
			c.Send([]byte{1, 2, 3, 4}, 1, 0)
		} else {
			buf := make([]byte, 2)
			_, err := c.Recv(buf, 0, 0)
			if err == nil {
				t.Error("truncation not reported")
			}
		}
	})
}

func TestSendToSelf(t *testing.T) {
	runWorld(t, 1, 1, func(c Comm) {
		r, err := c.Isend([]byte{5}, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		if _, err := c.Recv(buf, 0, 0); err != nil {
			t.Fatal(err)
		}
		c.Wait(r)
		if buf[0] != 5 {
			t.Errorf("self message = %d", buf[0])
		}
	})
}

func TestInvalidRanks(t *testing.T) {
	runWorld(t, 2, 1, func(c Comm) {
		if err := c.Send(nil, 5, 0); err == nil {
			t.Error("send to invalid rank accepted")
		}
		if _, err := c.Irecv(nil, 17, 0); err == nil {
			t.Error("recv from invalid rank accepted")
		}
		if err := c.Bcast(nil, -2); err == nil {
			t.Error("bcast with invalid root accepted")
		}
		if _, err := c.Wait(nil); err == nil {
			t.Error("wait on nil request accepted")
		}
		c.Barrier()
	})
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	var intra, inter time.Duration
	// Two ranks on one node.
	intra = runWorld(t, 2, 2, func(c Comm) {
		if c.Rank() == 0 {
			c.Send(make([]byte, 1<<20), 1, 0)
		} else {
			buf := make([]byte, 1<<20)
			c.Recv(buf, 0, 0)
		}
	})
	// Two ranks on two nodes.
	inter = runWorld(t, 2, 1, func(c Comm) {
		if c.Rank() == 0 {
			c.Send(make([]byte, 1<<20), 1, 0)
		} else {
			buf := make([]byte, 1<<20)
			c.Recv(buf, 0, 0)
		}
	})
	if intra >= inter {
		t.Errorf("intra-node %v not faster than inter-node %v", intra, inter)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var releases [4]time.Duration
	runWorld(t, 4, 1, func(c Comm) {
		// Stagger arrivals.
		c.Proc().Sleep(time.Duration(c.Rank()) * 10 * time.Millisecond)
		if err := c.Barrier(); err != nil {
			t.Error(err)
		}
		releases[c.Rank()] = c.Proc().Now()
	})
	for r, rel := range releases {
		if rel < 30*time.Millisecond {
			t.Errorf("rank %d released at %v, before last arrival", r, rel)
		}
	}
}

func TestBcast(t *testing.T) {
	runWorld(t, 4, 1, func(c Comm) {
		data := make([]byte, 4)
		if c.Rank() == 2 {
			copy(data, []byte{9, 9, 9, 9})
		}
		if err := c.Bcast(data, 2); err != nil {
			t.Error(err)
		}
		for _, b := range data {
			if b != 9 {
				t.Errorf("rank %d bcast data = %v", c.Rank(), data)
			}
		}
	})
}

func TestReduceSumAtRoot(t *testing.T) {
	runWorld(t, 4, 1, func(c Comm) {
		send := Float64Bytes([]float64{float64(c.Rank() + 1)})
		recv := make([]byte, 8)
		if err := c.Reduce(send, recv, OpSum, 0); err != nil {
			t.Error(err)
		}
		if c.Rank() == 0 {
			got := BytesFloat64(recv)[0]
			if got != 10 { // 1+2+3+4
				t.Errorf("reduce sum = %v, want 10", got)
			}
		}
	})
}

func TestAllreduceOps(t *testing.T) {
	runWorld(t, 4, 1, func(c Comm) {
		v := float64(c.Rank() + 1)
		recv := make([]byte, 8)
		if err := c.Allreduce(Float64Bytes([]float64{v}), recv, OpSum); err != nil {
			t.Error(err)
		}
		if got := BytesFloat64(recv)[0]; got != 10 {
			t.Errorf("allreduce sum = %v, want 10", got)
		}
		if err := c.Allreduce(Float64Bytes([]float64{v}), recv, OpMax); err != nil {
			t.Error(err)
		}
		if got := BytesFloat64(recv)[0]; got != 4 {
			t.Errorf("allreduce max = %v, want 4", got)
		}
		if err := c.Allreduce(Float64Bytes([]float64{v}), recv, OpMin); err != nil {
			t.Error(err)
		}
		if got := BytesFloat64(recv)[0]; got != 1 {
			t.Errorf("allreduce min = %v, want 1", got)
		}
		one := []byte{byte(1 << c.Rank())}
		out := make([]byte, 1)
		if err := c.Allreduce(one, out, OpBOr); err != nil {
			t.Error(err)
		}
		if out[0] != 0x0F {
			t.Errorf("allreduce bor = %x, want 0x0F", out[0])
		}
	})
}

func TestGather(t *testing.T) {
	var rootDone, leafDone time.Duration
	runWorld(t, 4, 1, func(c Comm) {
		send := []byte{byte(c.Rank())}
		var recv []byte
		if c.Rank() == 0 {
			recv = make([]byte, 4)
		}
		if err := c.Gather(send, recv, 0); err != nil {
			t.Error(err)
		}
		if c.Rank() == 0 {
			rootDone = c.Proc().Now()
			for i, b := range recv {
				if b != byte(i) {
					t.Errorf("gather result = %v", recv)
					break
				}
			}
		}
		if c.Rank() == 1 {
			leafDone = c.Proc().Now()
		}
	})
	if rootDone <= leafDone {
		t.Errorf("root finished at %v, not after leaf %v (root drains all flows)", rootDone, leafDone)
	}
}

func TestGatherCostGrowsSuperLinearly(t *testing.T) {
	// Doubling the rank count should much more than double the gather
	// completion time at the root (contention model, paper Fig. 10).
	cost := func(p int) time.Duration {
		return runWorld(t, p, 1, func(c Comm) {
			send := make([]byte, 1<<16)
			var recv []byte
			if c.Rank() == 0 {
				recv = make([]byte, p*(1<<16))
			}
			c.Gather(send, recv, 0)
		})
	}
	c8, c32 := cost(8), cost(32)
	if float64(c32) < 4.5*float64(c8) {
		t.Errorf("gather cost p=32 (%v) vs p=8 (%v): ratio %.2f, want super-linear growth",
			c32, c8, float64(c32)/float64(c8))
	}
}

func TestAllgather(t *testing.T) {
	runWorld(t, 3, 1, func(c Comm) {
		send := []byte{byte(10 + c.Rank())}
		recv := make([]byte, 3)
		if err := c.Allgather(send, recv); err != nil {
			t.Error(err)
		}
		for i := range recv {
			if recv[i] != byte(10+i) {
				t.Errorf("allgather = %v", recv)
			}
		}
	})
}

func TestScatter(t *testing.T) {
	runWorld(t, 4, 1, func(c Comm) {
		var send []byte
		if c.Rank() == 1 {
			send = []byte{0, 1, 2, 3}
		}
		recv := make([]byte, 1)
		if err := c.Scatter(send, recv, 1); err != nil {
			t.Error(err)
		}
		if recv[0] != byte(c.Rank()) {
			t.Errorf("rank %d scatter = %v", c.Rank(), recv)
		}
	})
}

func TestAlltoall(t *testing.T) {
	const p = 3
	runWorld(t, p, 1, func(c Comm) {
		send := make([]byte, p)
		for j := range send {
			send[j] = byte(c.Rank()*10 + j)
		}
		recv := make([]byte, p)
		if err := c.Alltoall(send, recv); err != nil {
			t.Error(err)
		}
		for i := range recv {
			want := byte(i*10 + c.Rank())
			if recv[i] != want {
				t.Errorf("rank %d recv[%d] = %d, want %d", c.Rank(), i, recv[i], want)
			}
		}
	})
}

func TestCollectiveRootMismatch(t *testing.T) {
	errs := make([]error, 2)
	runWorld(t, 2, 1, func(c Comm) {
		data := make([]byte, 1)
		errs[c.Rank()] = c.Bcast(data, c.Rank()) // ranks disagree on root
	})
	if errs[0] == nil && errs[1] == nil {
		t.Error("root mismatch not detected")
	}
}

func TestRecvDeadlockDetected(t *testing.T) {
	e := des.NewEngine()
	w, _ := NewWorld(e, Config{Size: 1, Net: perfmodel.QDRInfiniBand()})
	e.Spawn("rank0", func(p *des.Proc) {
		c, _ := w.Attach(0, p)
		buf := make([]byte, 1)
		c.Recv(buf, 0, 0) // never satisfied
	})
	var dl *des.DeadlockError
	if err := e.Run(); !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestAttachValidation(t *testing.T) {
	e := des.NewEngine()
	w, _ := NewWorld(e, Config{Size: 2, Net: perfmodel.QDRInfiniBand()})
	if _, err := w.Attach(5, nil); err == nil {
		t.Error("attach of out-of-range rank accepted")
	}
	if _, err := NewWorld(e, Config{Size: 0}); err == nil {
		t.Error("zero-size world accepted")
	}
}

func TestTopology(t *testing.T) {
	e := des.NewEngine()
	w, _ := NewWorld(e, Config{Size: 8, Net: perfmodel.QDRInfiniBand(), RanksPerNode: 4})
	if w.NodeOf(3) != 0 || w.NodeOf(4) != 1 {
		t.Error("block distribution wrong")
	}
	if w.Nodes() != 2 {
		t.Errorf("nodes = %d, want 2", w.Nodes())
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() time.Duration {
		return runWorld(t, 8, 2, func(c Comm) {
			recv := make([]byte, 8)
			for i := 0; i < 5; i++ {
				c.Allreduce(Float64Bytes([]float64{1}), recv, OpSum)
				if c.Rank()%2 == 0 && c.Rank()+1 < c.Size() {
					c.Send(make([]byte, 1024), c.Rank()+1, i)
				} else if c.Rank()%2 == 1 {
					buf := make([]byte, 1024)
					c.Recv(buf, c.Rank()-1, i)
				}
			}
			c.Barrier()
		})
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

// Property: Allreduce(sum) over random contributions equals the local sum,
// on every rank.
func TestPropAllreduceSum(t *testing.T) {
	prop := func(vals [4]int16) bool {
		var want float64
		for _, v := range vals {
			want += float64(v)
		}
		ok := true
		runWorld(t, 4, 1, func(c Comm) {
			recv := make([]byte, 8)
			if err := c.Allreduce(Float64Bytes([]float64{float64(vals[c.Rank()])}), recv, OpSum); err != nil {
				ok = false
				return
			}
			if BytesFloat64(recv)[0] != want {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Alltoall twice is the identity permutation of chunks.
func TestPropAlltoallInvolution(t *testing.T) {
	prop := func(seed uint8) bool {
		const p = 4
		ok := true
		runWorld(t, p, 1, func(c Comm) {
			orig := make([]byte, p)
			for j := range orig {
				orig[j] = byte(int(seed) + c.Rank()*p + j)
			}
			once := make([]byte, p)
			twice := make([]byte, p)
			if err := c.Alltoall(orig, once); err != nil {
				ok = false
				return
			}
			if err := c.Alltoall(once, twice); err != nil {
				ok = false
				return
			}
			for j := range orig {
				if twice[j] != orig[j] {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFloat64BytesRoundTrip(t *testing.T) {
	prop := func(xs []float64) bool {
		got := BytesFloat64(Float64Bytes(xs))
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] && !(got[i] != got[i] && xs[i] != xs[i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllreduce64Ranks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := des.NewEngine()
		w, _ := NewWorld(e, Config{Size: 64, Net: perfmodel.QDRInfiniBand(), RanksPerNode: 8})
		for r := 0; r < 64; r++ {
			r := r
			e.Spawn(fmt.Sprintf("rank%d", r), func(p *des.Proc) {
				c, _ := w.Attach(r, p)
				recv := make([]byte, 8)
				for k := 0; k < 10; k++ {
					c.Allreduce(Float64Bytes([]float64{1}), recv, OpSum)
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
