package mpisim

import (
	"fmt"
	"sort"
)

// RankFailedError reports that an MPI operation failed because a rank in
// the communicator has died. Matching real MPI, a single rank failure
// breaks the whole communicator for collective operations — surviving
// ranks get this error instead of hanging.
type RankFailedError struct {
	Rank int
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mpisim: rank %d failed", e.Rank)
}

// Is makes errors.Is match any RankFailedError regardless of rank.
func (e *RankFailedError) Is(target error) bool {
	_, ok := target.(*RankFailedError)
	return ok
}

// ErrRankFailed is the errors.Is sentinel for communicator failures.
var ErrRankFailed = &RankFailedError{Rank: -1}

// MarkFailed declares a rank dead. Pending collectives fail immediately
// for every rank already waiting in them, posted receives matching the
// dead source fail, and future sends to or collective calls touching the
// communicator return a *RankFailedError. Idempotent; safe to call from
// event context.
//
// Determinism note: pending collectives are failed in sorted key order
// (kind, then sequence number) so the wake-up order of blocked ranks
// never depends on map iteration order.
func (w *World) MarkFailed(rank int) {
	if rank < 0 || rank >= w.size {
		return
	}
	if w.failed == nil {
		w.failed = make([]bool, w.size)
	}
	if w.failed[rank] {
		return
	}
	w.failed[rank] = true
	if w.nFailed == 0 {
		w.firstFail = rank
	}
	w.nFailed++
	err := &RankFailedError{Rank: rank}

	// Fail every pending collective: all waiting ranks wake with the error.
	keys := make([]collKey, 0, len(w.colls))
	for k := range w.colls {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].seq < keys[j].seq
	})
	for _, k := range keys {
		st := w.colls[k]
		delete(w.colls, k)
		st.err = err
		for _, sig := range st.done {
			sig.Fire()
		}
	}

	// Fail posted receives that can only be satisfied by the dead rank.
	for dst := range w.posted {
		kept := w.posted[dst][:0]
		for _, r := range w.posted[dst] {
			if r.src == rank {
				r.req.err = err
				r.req.sig.Fire()
				continue
			}
			kept = append(kept, r)
		}
		w.posted[dst] = kept
	}
}

// Failed reports whether the rank has been marked failed.
func (w *World) Failed(rank int) bool {
	return w.failed != nil && rank >= 0 && rank < w.size && w.failed[rank]
}

// FailedCount returns the number of failed ranks.
func (w *World) FailedCount() int { return w.nFailed }

// failedErr returns the communicator-wide failure, or nil while all ranks
// are alive. The first failed rank is reported, matching the error
// surviving ranks saw when their collective broke.
func (w *World) failedErr() error {
	if w.nFailed == 0 {
		return nil
	}
	return &RankFailedError{Rank: w.firstFail}
}
