package mpisim

import (
	"fmt"
	"time"
)

// message is an in-flight point-to-point message.
type message struct {
	src, tag int
	data     []byte // copied at send time, so senders may reuse buffers
	arrival  time.Duration
}

// recvReq is a posted receive waiting for a matching message.
type recvReq struct {
	src, tag int // may be wildcards
	buf      []byte
	req      *Request
}

func (m *message) matches(src, tag int) bool {
	return (src == AnySource || src == m.src) && (tag == AnyTag || tag == m.tag)
}

// deliver copies the message into buf and fills the request's status at
// the message arrival time, firing the request signal then.
func (w *World) deliver(m *message, r *recvReq) {
	fire := func() {
		n := copy(r.buf, m.data)
		r.req.status = Status{Source: m.src, Tag: m.tag, Count: n}
		if len(m.data) > len(r.buf) {
			r.req.err = fmt.Errorf("mpisim: message truncated: %d bytes into %d-byte buffer", len(m.data), len(r.buf))
		}
	}
	if m.arrival <= w.eng.Now() {
		fire()
		r.req.sig.Fire()
	} else {
		w.eng.Schedule(m.arrival, func() {
			fire()
			r.req.sig.Fire()
		})
	}
}

// postMessage matches a new message against posted receives or queues it.
func (w *World) postMessage(dst int, m *message) {
	for i, r := range w.posted[dst] {
		if m.matches(r.src, r.tag) {
			w.posted[dst] = append(w.posted[dst][:i], w.posted[dst][i+1:]...)
			w.deliver(m, r)
			return
		}
	}
	w.mailbox[dst] = append(w.mailbox[dst], m)
}

// postRecv matches a receive against queued messages or queues it.
func (w *World) postRecv(dst int, r *recvReq) {
	for i, m := range w.mailbox[dst] {
		if m.matches(r.src, r.tag) {
			w.mailbox[dst] = append(w.mailbox[dst][:i], w.mailbox[dst][i+1:]...)
			w.deliver(m, r)
			return
		}
	}
	// A receive naming a dead source with no already-sent message can
	// never complete — fail it instead of queueing it forever.
	if r.src != AnySource && w.Failed(r.src) {
		r.req.err = &RankFailedError{Rank: r.src}
		r.req.sig.Fire()
		return
	}
	w.posted[dst] = append(w.posted[dst], r)
}

func (c *comm) checkRank(r int, wildcardOK bool) error {
	if wildcardOK && r == AnySource {
		return nil
	}
	if r < 0 || r >= c.w.size {
		return fmt.Errorf("mpisim: rank %d out of range [0,%d)", r, c.w.size)
	}
	return nil
}

// arrivalAt computes when a message of n bytes sent now reaches dest,
// serialising on the destination's NIC: concurrent senders to one
// endpoint queue up (incast), which is what makes many-to-one patterns
// scale linearly in the sender count.
func (w *World) arrivalAt(now time.Duration, n int64, src, dst int) time.Duration {
	cost := w.p2pCost(n, src, dst)
	start := now
	if w.recvTail[dst] > start {
		start = w.recvTail[dst]
	}
	arrival := start + cost
	w.recvTail[dst] = arrival
	return arrival
}

// Isend starts a nonblocking standard-mode send. The data is copied
// immediately (buffered send), so the caller may reuse the buffer; the
// request completes when the message has been injected into the network.
func (c *comm) Isend(data []byte, dest, tag int) (*Request, error) {
	if err := c.checkRank(dest, false); err != nil {
		return nil, err
	}
	if c.w.Failed(dest) {
		return nil, &RankFailedError{Rank: dest}
	}
	m := &message{
		src:     c.rank,
		tag:     tag,
		data:    append([]byte(nil), data...),
		arrival: c.w.arrivalAt(c.proc.Now(), int64(len(data)), c.rank, dest),
	}
	req := &Request{sig: c.w.eng.NewSignal("isend")}
	c.w.postMessage(dest, m)
	// Local completion: buffer handed off; model the injection overhead as
	// the latency term only.
	req.sig.FireAt(c.proc.Now() + c.w.net.Latency)
	return req, nil
}

// Send is the blocking standard-mode send: it occupies the sender until
// the message has been delivered (a deliberately conservative
// rendezvous-style model; see DESIGN.md).
func (c *comm) Send(data []byte, dest, tag int) error {
	if err := c.checkRank(dest, false); err != nil {
		return err
	}
	if c.w.Failed(dest) {
		return &RankFailedError{Rank: dest}
	}
	now := c.proc.Now()
	m := &message{
		src:     c.rank,
		tag:     tag,
		data:    append([]byte(nil), data...),
		arrival: c.w.arrivalAt(now, int64(len(data)), c.rank, dest),
	}
	c.w.postMessage(dest, m)
	c.proc.Sleep(m.arrival - now)
	return nil
}

// Irecv posts a nonblocking receive.
func (c *comm) Irecv(buf []byte, source, tag int) (*Request, error) {
	if err := c.checkRank(source, true); err != nil {
		return nil, err
	}
	req := &Request{sig: c.w.eng.NewSignal("irecv")}
	c.w.postRecv(c.rank, &recvReq{src: source, tag: tag, buf: buf, req: req})
	return req, nil
}

// Recv blocks until a matching message has been received into buf.
func (c *comm) Recv(buf []byte, source, tag int) (Status, error) {
	req, err := c.Irecv(buf, source, tag)
	if err != nil {
		return Status{}, err
	}
	return c.Wait(req)
}

// Wait blocks until the request completes and returns its status.
func (c *comm) Wait(req *Request) (Status, error) {
	if req == nil {
		return Status{}, fmt.Errorf("mpisim: wait on nil request")
	}
	c.proc.Wait(req.sig)
	return req.status, req.err
}

// Waitall waits for every request, returning the first error.
func (c *comm) Waitall(reqs []*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := c.Wait(r); err != nil && first == nil {
			first = err
		}
	}
	return first
}
