package gpusim

import (
	"encoding/binary"
	"math"
)

// F64View interprets a byte slice (host or device memory) as a vector of
// little-endian float64 values, letting functional kernel bodies operate
// on simulated device memory without unsafe casts.
type F64View struct{ b []byte }

// Float64s wraps a byte slice as a float64 view.
func Float64s(b []byte) F64View { return F64View{b} }

// F64Bytes returns the number of bytes n float64 elements occupy.
func F64Bytes(n int) int64 { return int64(n) * 8 }

// Len returns the number of complete float64 elements in the view.
func (v F64View) Len() int { return len(v.b) / 8 }

// At returns element i.
func (v F64View) At(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(v.b[i*8:]))
}

// Set stores x at element i.
func (v F64View) Set(i int, x float64) {
	binary.LittleEndian.PutUint64(v.b[i*8:], math.Float64bits(x))
}

// CopyIn copies a host float64 slice into the view starting at element 0.
func (v F64View) CopyIn(src []float64) {
	for i, x := range src {
		v.Set(i, x)
	}
}

// CopyOut copies the first len(dst) elements out of the view.
func (v F64View) CopyOut(dst []float64) {
	for i := range dst {
		dst[i] = v.At(i)
	}
}

// C128View interprets a byte slice as a vector of little-endian complex128
// values (real part first, as in Fortran/CUBLAS storage).
type C128View struct{ b []byte }

// Complex128s wraps a byte slice as a complex128 view.
func Complex128s(b []byte) C128View { return C128View{b} }

// C128Bytes returns the number of bytes n complex128 elements occupy.
func C128Bytes(n int) int64 { return int64(n) * 16 }

// Len returns the number of complete complex128 elements in the view.
func (v C128View) Len() int { return len(v.b) / 16 }

// At returns element i.
func (v C128View) At(i int) complex128 {
	re := math.Float64frombits(binary.LittleEndian.Uint64(v.b[i*16:]))
	im := math.Float64frombits(binary.LittleEndian.Uint64(v.b[i*16+8:]))
	return complex(re, im)
}

// Set stores x at element i.
func (v C128View) Set(i int, x complex128) {
	binary.LittleEndian.PutUint64(v.b[i*16:], math.Float64bits(real(x)))
	binary.LittleEndian.PutUint64(v.b[i*16+8:], math.Float64bits(imag(x)))
}

// CopyIn copies a host complex128 slice into the view.
func (v C128View) CopyIn(src []complex128) {
	for i, x := range src {
		v.Set(i, x)
	}
}

// CopyOut copies the first len(dst) elements out of the view.
func (v C128View) CopyOut(dst []complex128) {
	for i := range dst {
		dst[i] = v.At(i)
	}
}
