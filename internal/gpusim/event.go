package gpusim

import (
	"errors"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/telemetry"
)

// DevEvent models a CUDA event: a marker inserted into a stream whose
// completion timestamp on the device timeline can be queried from the
// host. This is the mechanism IPM uses to recover GPU-side kernel
// durations (paper Section III-B).
type DevEvent struct {
	dev      *Device
	recorded bool
	op       *Op
}

// ErrEventNotRecorded is returned when querying an event that has not been
// recorded into a stream.
var ErrEventNotRecorded = errors.New("gpusim: event not recorded")

// ErrEventNotReady is returned by Elapsed when either event has not yet
// completed on the device.
var ErrEventNotReady = errors.New("gpusim: event not ready")

// NewEvent creates an unrecorded event.
func (d *Device) NewEvent() *DevEvent { return &DevEvent{dev: d} }

// Record inserts the event into the stream. The event completes when all
// prior work on the stream has completed. Re-recording reuses the event
// with a fresh completion.
func (ev *DevEvent) Record(s *Stream) {
	ready := ev.dev.earliest(s)
	ev.op = ev.dev.enqueue(s, OpEventRecord, "eventRecord", ready, ev.dev.spec.EventRecordCost, nil)
	ev.dev.recordStreamSpan(s, telemetry.ClassGPU, ev.op, 0)
	ev.recorded = true
}

// Query reports whether the event has completed on the device (the
// cudaEventQuery success condition). An unrecorded event reports false.
func (ev *DevEvent) Query() bool {
	return ev.recorded && ev.op.done.Fired()
}

// Done returns the completion signal, or nil if the event has not been
// recorded.
func (ev *DevEvent) Done() *des.Signal {
	if !ev.recorded {
		return nil
	}
	return ev.op.Done()
}

// Timestamp returns the device-timeline completion time of the event.
func (ev *DevEvent) Timestamp() (time.Duration, error) {
	if !ev.recorded {
		return 0, ErrEventNotRecorded
	}
	if !ev.op.done.Fired() {
		return 0, ErrEventNotReady
	}
	return ev.op.End, nil
}

// Elapsed returns stop-start on the device timeline, like
// cudaEventElapsedTime. Both events must have completed.
func (ev *DevEvent) Elapsed(stop *DevEvent) (time.Duration, error) {
	a, err := ev.Timestamp()
	if err != nil {
		return 0, err
	}
	b, err := stop.Timestamp()
	if err != nil {
		return 0, err
	}
	return b - a, nil
}
