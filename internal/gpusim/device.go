// Package gpusim simulates a CUDA-capable GPU device in virtual time.
//
// The device executes operations (kernels, memory copies, memsets, event
// records) enqueued on streams. Scheduling follows the CUDA 3.x execution
// model the paper's monitoring layer observes:
//
//   - operations within one stream execute in order;
//   - the legacy NULL stream (stream 0) is a barrier: a NULL-stream
//     operation waits for all previously enqueued work on every stream, and
//     operations enqueued later on any stream wait for it;
//   - kernels from different streams may overlap up to
//     GPUSpec.MaxConcurrent (16 on Fermi);
//   - host-to-device and device-to-host copies use separate copy engines
//     (the C2050 has one DMA engine per direction), each serial;
//   - the first operation that touches the device pays the context
//     initialisation cost (visible in the paper's Fig. 4 as a 2.4 s
//     cudaMalloc).
//
// Operations may carry a functional payload that runs at completion time in
// virtual time order, so simulated kernels can perform real data movement
// and arithmetic on simulated device memory.
package gpusim

import (
	"container/heap"
	"fmt"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/devmodel"
	"ipmgo/internal/perfmodel"
	"ipmgo/internal/telemetry"
)

// Device is a simulated GPU. Create devices with NewDevice (bare
// perfmodel spec, one copy engine per direction, no power model) or
// NewDeviceSpec (a devmodel backend). A Device is driven from DES
// process context (the simulated host); it is not safe for use outside
// the owning engine.
type Device struct {
	eng   *des.Engine
	model devmodel.Spec
	spec  perfmodel.GPUSpec // == model.GPU, kept unindirected for hot paths

	streams      map[int]*Stream
	nextStreamID int

	h2dTails []time.Duration // copy engine availability, host-to-device
	d2hTails []time.Duration // copy engine availability, device-to-host
	active   endHeap         // end times of scheduled kernels (concurrency limit)
	allTail  time.Duration   // completion of the latest op on any stream
	nullTail time.Duration   // completion of the latest NULL-stream op
	lastOp   *Op             // op with the latest completion time

	mem *memPool

	// slab is the current allocation chunk for Ops. Ops live for the whole
	// run (streams, events and profilers keep pointers into them), so the
	// slab only amortises: one heap allocation per opSlabSize ops instead
	// of one per op.
	slab []Op

	busyKernel time.Duration // accumulated kernel execution time
	busyCopy   time.Duration // accumulated copy-engine busy time
	busyMemset time.Duration // accumulated device-side memset time
	nOps       int

	// lost marks the device as failed (cudaErrorDeviceLost). Completion
	// events of in-flight operations become no-ops: their Done signals
	// never fire, so hosts synchronising on them hang — exactly the
	// behaviour a watchdog layer has to detect.
	lost bool

	// OnKernelComplete, if set, is invoked at each kernel's completion
	// time with its exact execution record. The CUDA-profiler substrate
	// (internal/cudaprof) registers here; chains are the caller's job.
	OnKernelComplete func(KernelRecord)

	// Streaming telemetry: when tel is non-nil, every device operation is
	// recorded as a span on a per-stream or per-copy-engine track. Track
	// names are memoized so the per-op cost is a map lookup, and span
	// timestamps are the exact schedule the simulator computed at enqueue
	// time — the device-side ground truth of the paper's KTT.
	tel     *telemetry.Recorder
	telName string
	telGen  int // bumped on AttachTelemetry; invalidates Stream.telTrack
	telH2D  []string // per-copy-engine track names, host-to-device
	telD2H  []string // per-copy-engine track names, device-to-host
}

// opSlabSize is the Op chunk size; see Device.slab.
const opSlabSize = 128

// newOp returns a fresh zeroed Op from the slab.
func (d *Device) newOp() *Op {
	if len(d.slab) == cap(d.slab) {
		d.slab = make([]Op, 0, opSlabSize)
	}
	d.slab = d.slab[:len(d.slab)+1]
	return &d.slab[len(d.slab)-1]
}

// KernelRecord is the exact ground-truth execution record of one kernel,
// as the real CUDA profiler would log it. Cost carries the launch's
// resource model so counter components can derive hardware-counter values
// without separate registration.
type KernelRecord struct {
	Name     string
	Stream   int
	Start    time.Duration // device timestamp at which execution began
	End      time.Duration
	GridDim  [3]int
	BlockDim [3]int
	Cost     perfmodel.KernelCost
}

// Duration returns the exact kernel execution time.
func (r KernelRecord) Duration() time.Duration { return r.End - r.Start }

// NewDevice creates a device from a bare performance spec: one copy
// engine per direction and no power model, exactly the pre-registry
// behaviour. Backend-aware callers use NewDeviceSpec.
func NewDevice(eng *des.Engine, spec perfmodel.GPUSpec) *Device {
	return NewDeviceSpec(eng, devmodel.Custom(spec))
}

// NewDeviceSpec creates a device from a devmodel backend spec, sizing
// the per-direction copy-engine pools from the spec.
func NewDeviceSpec(eng *des.Engine, model devmodel.Spec) *Device {
	engines := model.EffectiveCopyEngines()
	d := &Device{
		eng:      eng,
		model:    model,
		spec:     model.GPU,
		streams:  make(map[int]*Stream),
		mem:      newMemPool(model.GPU.MemBytes),
		h2dTails: make([]time.Duration, engines),
		d2hTails: make([]time.Duration, engines),
	}
	d.streams[0] = &Stream{id: 0, dev: d}
	d.nextStreamID = 1
	return d
}

// AttachTelemetry routes every device operation into rec as a span.
// name labels the device's tracks ("gpu0" yields "gpu0/strm00",
// "gpu0/copyH2D", ...). Attach before enqueuing work; nil detaches.
func (d *Device) AttachTelemetry(rec *telemetry.Recorder, name string) {
	d.tel = rec
	d.telName = name
	d.telGen++ // drop track names cached under the previous attachment
	engines := len(d.h2dTails)
	d.telH2D = make([]string, engines)
	d.telD2H = make([]string, engines)
	for i := 0; i < engines; i++ {
		if engines == 1 {
			// Single-engine devices keep the historical track names.
			d.telH2D[i] = name + "/copyH2D"
			d.telD2H[i] = name + "/copyD2H"
		} else {
			d.telH2D[i] = fmt.Sprintf("%s/copyH2D%d", name, i)
			d.telD2H[i] = fmt.Sprintf("%s/copyD2H%d", name, i)
		}
	}
}

// streamTrack returns the track name of a stream, cached on the Stream
// itself (built with fmt once per stream per telemetry attachment, then a
// field read per op).
func (d *Device) streamTrack(s *Stream) string {
	if s.telGen != d.telGen || s.telTrack == "" {
		s.telTrack = fmt.Sprintf("%s/strm%02d", d.telName, s.id)
		s.telGen = d.telGen
	}
	return s.telTrack
}

// recordStreamSpan emits one span on the op's stream track when
// telemetry is attached. The disabled path is a single nil check; track
// names are cached per stream.
func (d *Device) recordStreamSpan(s *Stream, class telemetry.SpanClass, op *Op, bytes int64) {
	if d.tel == nil {
		return
	}
	d.tel.Record(telemetry.Span{
		Track: d.streamTrack(s), Name: op.Name, Class: class,
		Start: op.Start, End: op.End, Bytes: bytes,
	})
}

// Spec returns the device's performance specification.
func (d *Device) Spec() perfmodel.GPUSpec { return d.spec }

// Model returns the full backend spec the device was built from (for a
// NewDevice device, an ad-hoc spec wrapping the perfmodel parameters).
func (d *Device) Model() devmodel.Spec { return d.model }

// Power returns the device's power model (zero when absent).
func (d *Device) Power() devmodel.PowerSpec { return d.model.Power }

// Engine returns the owning DES engine.
func (d *Device) Engine() *des.Engine { return d.eng }

// DefaultStream returns the legacy NULL stream.
func (d *Device) DefaultStream() *Stream { return d.streams[0] }

// CreateStream creates a new non-NULL stream.
func (d *Device) CreateStream() *Stream {
	s := &Stream{id: d.nextStreamID, dev: d}
	d.nextStreamID++
	d.streams[s.id] = s
	return s
}

// DestroyStream removes the stream. Pending work is unaffected (it has
// already been scheduled). Destroying the NULL stream is an error.
func (d *Device) DestroyStream(s *Stream) error {
	if s.id == 0 {
		return fmt.Errorf("gpusim: cannot destroy the NULL stream")
	}
	delete(d.streams, s.id)
	return nil
}

// StreamByID returns the stream with the given id, or nil.
func (d *Device) StreamByID(id int) *Stream { return d.streams[id] }

// LastOp returns the operation with the latest completion time enqueued so
// far, or nil if the device is idle since creation. Waiting on its Done
// signal is equivalent to cudaDeviceSynchronize.
func (d *Device) LastOp() *Op { return d.lastOp }

// BusyKernelTime returns the accumulated kernel execution time (summed per
// kernel, so overlapping kernels count multiply).
func (d *Device) BusyKernelTime() time.Duration { return d.busyKernel }

// BusyCopyTime returns the accumulated copy-engine busy time across all
// engines and directions (including intra-device copies).
func (d *Device) BusyCopyTime() time.Duration { return d.busyCopy }

// BusyMemsetTime returns the accumulated device-side memset time.
func (d *Device) BusyMemsetTime() time.Duration { return d.busyMemset }

// ActiveEnergyNJ returns the device's attributable active energy so far
// in nanojoules: per-class busy time priced by the power model. Idle
// draw is time-based and left to the observer (it knows the wallclock).
func (d *Device) ActiveEnergyNJ() int64 {
	return d.model.Power.ActiveEnergyNJ(d.busyKernel, d.busyCopy, d.busyMemset)
}

// Ops returns the number of operations enqueued so far.
func (d *Device) Ops() int { return d.nOps }

// MarkLost fails the device. Already-scheduled completion events are
// suppressed (their Done signals stay unfired) and kernel-completion
// callbacks stop firing; enqueuing new work remains possible but it never
// completes. The call is idempotent.
func (d *Device) MarkLost() { d.lost = true }

// Lost reports whether the device has been marked lost.
func (d *Device) Lost() bool { return d.lost }

// endHeap is a min-heap of kernel end times, used to enforce the
// MaxConcurrent kernel limit.
type endHeap []time.Duration

func (h endHeap) Len() int            { return len(h) }
func (h endHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h endHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *endHeap) Push(x any)         { *h = append(*h, x.(time.Duration)) }
func (h *endHeap) Pop() any           { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
func (h endHeap) peek() time.Duration { return h[0] }

// kernelStart returns the start time for a kernel that is ready at t,
// respecting the device-wide concurrency limit, and registers its end time.
func (d *Device) kernelStart(t, dur time.Duration) time.Duration {
	for d.active.Len() > 0 && d.active.peek() <= t {
		heap.Pop(&d.active)
	}
	start := t
	if d.active.Len() >= d.spec.MaxConcurrent {
		start = heap.Pop(&d.active).(time.Duration)
		if start < t {
			start = t
		}
	}
	heap.Push(&d.active, start+dur)
	return start
}
