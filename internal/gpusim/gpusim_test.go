package gpusim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/perfmodel"
)

// testSpec returns a spec with round numbers that make timing assertions
// easy: dispatch 0, event cost 0, 1 GB/s everywhere, no init cost.
func testSpec() perfmodel.GPUSpec {
	s := perfmodel.TeslaC2050()
	s.KernelDispatch = 0
	s.EventRecordCost = 0
	s.PCIeLatency = 0
	s.PCIeH2DGBs = 1
	s.PCIeD2HGBs = 1
	s.ContextInit = 0
	return s
}

func fixed(d time.Duration) perfmodel.KernelCost { return perfmodel.KernelCost{Fixed: d} }

func TestKernelCompletionTime(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	var done time.Duration
	e.Spawn("host", func(p *des.Proc) {
		op := d.LaunchKernel(d.DefaultStream(), "k", fixed(10*time.Millisecond), [3]int{}, [3]int{}, nil)
		p.Wait(op.Done())
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 10*time.Millisecond {
		t.Errorf("kernel done at %v, want 10ms", done)
	}
}

func TestSameStreamSerializes(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	var ops []*Op
	e.Spawn("host", func(p *des.Proc) {
		s := d.CreateStream()
		for i := 0; i < 3; i++ {
			ops = append(ops, d.LaunchKernel(s, "k", fixed(5*time.Millisecond), [3]int{}, [3]int{}, nil))
		}
		p.Wait(ops[2].Done())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if ops[i].Start < ops[i-1].End {
			t.Errorf("op %d starts at %v before predecessor ends %v", i, ops[i].Start, ops[i-1].End)
		}
	}
	if ops[2].End != 15*time.Millisecond {
		t.Errorf("third kernel ends at %v, want 15ms", ops[2].End)
	}
}

func TestDifferentStreamsOverlap(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	var a, b *Op
	e.Spawn("host", func(p *des.Proc) {
		s1, s2 := d.CreateStream(), d.CreateStream()
		a = d.LaunchKernel(s1, "a", fixed(10*time.Millisecond), [3]int{}, [3]int{}, nil)
		b = d.LaunchKernel(s2, "b", fixed(10*time.Millisecond), [3]int{}, [3]int{}, nil)
		p.Wait(a.Done())
		p.Wait(b.Done())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Start != 0 || b.Start != 0 {
		t.Errorf("kernels should start together: a=%v b=%v", a.Start, b.Start)
	}
}

func TestConcurrencyLimit(t *testing.T) {
	spec := testSpec()
	spec.MaxConcurrent = 2
	e := des.NewEngine()
	d := NewDevice(e, spec)
	var ops []*Op
	e.Spawn("host", func(p *des.Proc) {
		for i := 0; i < 4; i++ {
			s := d.CreateStream()
			ops = append(ops, d.LaunchKernel(s, "k", fixed(10*time.Millisecond), [3]int{}, [3]int{}, nil))
		}
		for _, op := range ops {
			p.Wait(op.Done())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// With 2 slots and 4 equal kernels: two waves.
	if ops[0].Start != 0 || ops[1].Start != 0 {
		t.Errorf("first wave should start at 0: %v %v", ops[0].Start, ops[1].Start)
	}
	if ops[2].Start != 10*time.Millisecond || ops[3].Start != 10*time.Millisecond {
		t.Errorf("second wave should start at 10ms: %v %v", ops[2].Start, ops[3].Start)
	}
}

func TestNullStreamBarrier(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	var a, null, b *Op
	e.Spawn("host", func(p *des.Proc) {
		s := d.CreateStream()
		a = d.LaunchKernel(s, "a", fixed(10*time.Millisecond), [3]int{}, [3]int{}, nil)
		null = d.LaunchKernel(d.DefaultStream(), "null", fixed(5*time.Millisecond), [3]int{}, [3]int{}, nil)
		b = d.LaunchKernel(s, "b", fixed(5*time.Millisecond), [3]int{}, [3]int{}, nil)
		p.Wait(b.Done())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if null.Start < a.End {
		t.Errorf("NULL-stream op started %v before prior work ended %v", null.Start, a.End)
	}
	if b.Start < null.End {
		t.Errorf("op after NULL-stream op started %v before it ended %v", b.Start, null.End)
	}
}

func TestCopyEnginesSerializePerDirection(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	var h1, h2, d1 *Op
	e.Spawn("host", func(p *des.Proc) {
		s1, s2, s3 := d.CreateStream(), d.CreateStream(), d.CreateStream()
		h1 = d.EnqueueCopy(s1, perfmodel.HostToDevice, 1e9, false, nil) // 1s at 1GB/s
		h2 = d.EnqueueCopy(s2, perfmodel.HostToDevice, 1e9, false, nil)
		d1 = d.EnqueueCopy(s3, perfmodel.DeviceToHost, 1e9, false, nil)
		p.Wait(h2.Done())
		p.Wait(d1.Done())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if h2.Start < h1.End {
		t.Errorf("second H2D copy started %v before first ended %v", h2.Start, h1.End)
	}
	if d1.Start != 0 {
		t.Errorf("D2H copy should overlap H2D: started at %v", d1.Start)
	}
}

func TestEventElapsedBracketsKernel(t *testing.T) {
	e := des.NewEngine()
	spec := testSpec()
	spec.EventRecordCost = 2 * time.Microsecond
	d := NewDevice(e, spec)
	var elapsed time.Duration
	e.Spawn("host", func(p *des.Proc) {
		s := d.CreateStream()
		start, stop := d.NewEvent(), d.NewEvent()
		start.Record(s)
		op := d.LaunchKernel(s, "k", fixed(10*time.Millisecond), [3]int{}, [3]int{}, nil)
		stop.Record(s)
		p.Wait(stop.Done())
		var err error
		elapsed, err = start.Elapsed(stop)
		if err != nil {
			t.Error(err)
		}
		_ = op
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Event-bracketed time = kernel + one event record cost; always >= kernel.
	if elapsed < 10*time.Millisecond {
		t.Errorf("elapsed %v < kernel duration", elapsed)
	}
	if elapsed > 10*time.Millisecond+10*time.Microsecond {
		t.Errorf("elapsed %v too far above kernel duration", elapsed)
	}
}

func TestEventErrors(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	ev := d.NewEvent()
	if ev.Query() {
		t.Error("unrecorded event reports ready")
	}
	if _, err := ev.Timestamp(); !errors.Is(err, ErrEventNotRecorded) {
		t.Errorf("Timestamp err = %v, want ErrEventNotRecorded", err)
	}
	e.Spawn("host", func(p *des.Proc) {
		s := d.CreateStream()
		d.LaunchKernel(s, "k", fixed(time.Millisecond), [3]int{}, [3]int{}, nil)
		ev.Record(s)
		if ev.Query() {
			t.Error("event ready immediately after record")
		}
		if _, err := ev.Timestamp(); !errors.Is(err, ErrEventNotReady) {
			t.Errorf("Timestamp err = %v, want ErrEventNotReady", err)
		}
		p.Wait(ev.Done())
		if !ev.Query() {
			t.Error("event not ready after waiting")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFunctionalPayloadRuns(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	var out []byte
	e.Spawn("host", func(p *des.Proc) {
		ptr, err := d.Alloc(4)
		if err != nil {
			t.Fatal(err)
		}
		s := d.DefaultStream()
		op := d.LaunchKernel(s, "fill", fixed(time.Millisecond), [3]int{}, [3]int{}, func() {
			b, _ := d.Bytes(ptr, 4)
			copy(b, []byte{1, 2, 3, 4})
		})
		p.Wait(op.Done())
		b, _ := d.Bytes(ptr, 4)
		out = append(out, b...)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 || out[3] != 4 {
		t.Errorf("payload did not run: %v", out)
	}
}

func TestMemoryAllocFree(t *testing.T) {
	e := des.NewEngine()
	spec := testSpec()
	spec.MemBytes = 100
	d := NewDevice(e, spec)
	p1, err := d.Alloc(60)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(60); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("overcommit err = %v, want ErrOutOfMemory", err)
	}
	free, total := d.MemInfo()
	if free != 40 || total != 100 {
		t.Errorf("MemInfo = %d/%d, want 40/100", free, total)
	}
	if err := d.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(p1); err == nil {
		t.Error("double free not detected")
	}
	if err := d.Free(DevPtr{}); err != nil {
		t.Errorf("freeing null pointer: %v", err)
	}
	if err := d.Free(p1.Offset(3)); err == nil {
		// p1 freed already, but interior check comes first
		t.Error("interior free not detected")
	}
}

func TestBytesBoundsChecks(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	p, _ := d.Alloc(10)
	if _, err := d.Bytes(p, 11); err == nil {
		t.Error("overflow read not detected")
	}
	if _, err := d.Bytes(p.Offset(5), 6); err == nil {
		t.Error("offset overflow not detected")
	}
	if b, err := d.Bytes(p.Offset(5), 5); err != nil || len(b) != 5 {
		t.Errorf("interior view: %v len=%d", err, len(b))
	}
	if _, err := d.Bytes(DevPtr{alloc: 999}, 1); err == nil {
		t.Error("bad alloc id not detected")
	}
}

func TestKernelCompleteCallback(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	var recs []KernelRecord
	d.OnKernelComplete = func(r KernelRecord) { recs = append(recs, r) }
	e.Spawn("host", func(p *des.Proc) {
		s := d.CreateStream()
		op := d.LaunchKernel(s, "k1", fixed(3*time.Millisecond), [3]int{8, 1, 1}, [3]int{128, 1, 1}, nil)
		p.Wait(op.Done())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Name != "k1" || r.Duration() != 3*time.Millisecond || r.GridDim[0] != 8 {
		t.Errorf("bad record: %+v", r)
	}
}

func TestStreamLifecycle(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	s := d.CreateStream()
	if d.StreamByID(s.ID()) != s {
		t.Error("StreamByID lookup failed")
	}
	if err := d.DestroyStream(s); err != nil {
		t.Fatal(err)
	}
	if d.StreamByID(s.ID()) != nil {
		t.Error("destroyed stream still present")
	}
	if err := d.DestroyStream(d.DefaultStream()); err == nil {
		t.Error("destroying NULL stream should fail")
	}
}

func TestBusyKernelTimeAccumulates(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	e.Spawn("host", func(p *des.Proc) {
		s := d.CreateStream()
		op := d.LaunchKernel(s, "a", fixed(3*time.Millisecond), [3]int{}, [3]int{}, nil)
		op = d.LaunchKernel(s, "b", fixed(4*time.Millisecond), [3]int{}, [3]int{}, nil)
		p.Wait(op.Done())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if d.BusyKernelTime() != 7*time.Millisecond {
		t.Errorf("busy time = %v, want 7ms", d.BusyKernelTime())
	}
	if d.Ops() != 2 {
		t.Errorf("ops = %d, want 2", d.Ops())
	}
}

// Property: on a single stream, ops never overlap and respect enqueue
// order, for any mix of kernels and copies.
func TestPropSingleStreamNoOverlap(t *testing.T) {
	prop := func(kinds []bool, durs []uint16) bool {
		n := len(kinds)
		if len(durs) < n {
			n = len(durs)
		}
		if n == 0 {
			return true
		}
		e := des.NewEngine()
		d := NewDevice(e, testSpec())
		var ops []*Op
		e.Spawn("host", func(p *des.Proc) {
			s := d.CreateStream()
			for i := 0; i < n; i++ {
				dur := time.Duration(durs[i]+1) * time.Microsecond
				if kinds[i] {
					ops = append(ops, d.LaunchKernel(s, "k", fixed(dur), [3]int{}, [3]int{}, nil))
				} else {
					ops = append(ops, d.EnqueueCopy(s, perfmodel.HostToDevice, int64(durs[i])*1000, false, nil))
				}
			}
			p.Wait(ops[len(ops)-1].Done())
		})
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(ops); i++ {
			if ops[i].Start < ops[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: alloc/free bookkeeping always balances.
func TestPropAllocFreeBalance(t *testing.T) {
	prop := func(sizes []uint16) bool {
		e := des.NewEngine()
		d := NewDevice(e, testSpec())
		var ptrs []DevPtr
		for _, s := range sizes {
			p, err := d.Alloc(int64(s))
			if err != nil {
				return false
			}
			ptrs = append(ptrs, p)
		}
		for _, p := range ptrs {
			if err := d.Free(p); err != nil {
				return false
			}
		}
		free, total := d.MemInfo()
		return free == total && d.AllocCount() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLaunchKernelScheduling(b *testing.B) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	e.Spawn("host", func(p *des.Proc) {
		s := d.CreateStream()
		for i := 0; i < b.N; i++ {
			d.LaunchKernel(s, "k", fixed(time.Microsecond), [3]int{}, [3]int{}, nil)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
