package gpusim

import (
	"errors"
	"fmt"
)

// DevPtr is an opaque handle to simulated device memory: an allocation id
// plus a byte offset, supporting pointer arithmetic within an allocation.
// The zero DevPtr is the null device pointer.
type DevPtr struct {
	alloc int
	off   int64
}

// IsNull reports whether the pointer is the null device pointer.
func (p DevPtr) IsNull() bool { return p.alloc == 0 }

// Offset returns the pointer advanced by n bytes.
func (p DevPtr) Offset(n int64) DevPtr { return DevPtr{alloc: p.alloc, off: p.off + n} }

func (p DevPtr) String() string { return fmt.Sprintf("dev<%d>+%d", p.alloc, p.off) }

// ErrOutOfMemory is returned by Alloc when the device memory capacity is
// exceeded.
var ErrOutOfMemory = errors.New("gpusim: out of device memory")

// ErrBadDevPtr is returned for accesses through invalid device pointers.
var ErrBadDevPtr = errors.New("gpusim: invalid device pointer")

// allocation backs one device buffer. The data slice is materialised
// lazily on first functional access, so cost-only simulations (no kernel
// bodies, nil host buffers) carry no memory proportional to the modelled
// problem size.
type allocation struct {
	size int64
	data []byte
}

func (a *allocation) bytes() []byte {
	if a.data == nil && a.size > 0 {
		a.data = make([]byte, a.size)
	}
	return a.data
}

type memPool struct {
	capacity int64
	used     int64
	next     int
	allocs   map[int]*allocation
}

func newMemPool(capacity int64) *memPool {
	return &memPool{capacity: capacity, next: 1, allocs: make(map[int]*allocation)}
}

// Alloc reserves n bytes of device memory with backing storage for
// functional execution.
func (d *Device) Alloc(n int64) (DevPtr, error) {
	if n < 0 {
		return DevPtr{}, fmt.Errorf("gpusim: negative allocation size %d", n)
	}
	m := d.mem
	if m.used+n > m.capacity {
		return DevPtr{}, fmt.Errorf("%w: want %d, %d of %d in use", ErrOutOfMemory, n, m.used, m.capacity)
	}
	id := m.next
	m.next++
	m.allocs[id] = &allocation{size: n}
	m.used += n
	return DevPtr{alloc: id}, nil
}

// Free releases the allocation containing p. Freeing the null pointer is a
// no-op, as in CUDA; freeing an interior pointer or an already-freed
// pointer is an error.
func (d *Device) Free(p DevPtr) error {
	if p.IsNull() {
		return nil
	}
	if p.off != 0 {
		return fmt.Errorf("%w: free of interior pointer %v", ErrBadDevPtr, p)
	}
	a, ok := d.mem.allocs[p.alloc]
	if !ok {
		return fmt.Errorf("%w: double free or invalid %v", ErrBadDevPtr, p)
	}
	d.mem.used -= a.size
	delete(d.mem.allocs, p.alloc)
	return nil
}

// Bytes returns a mutable view of n bytes of device memory at p, for
// functional payloads and data verification.
func (d *Device) Bytes(p DevPtr, n int64) ([]byte, error) {
	a, ok := d.mem.allocs[p.alloc]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrBadDevPtr, p)
	}
	if p.off < 0 || p.off+n > a.size {
		return nil, fmt.Errorf("%w: range [%d,%d) outside allocation of %d bytes", ErrBadDevPtr, p.off, p.off+n, a.size)
	}
	return a.bytes()[p.off : p.off+n], nil
}

// MemInfo returns (free, total) device memory, like cudaMemGetInfo.
func (d *Device) MemInfo() (free, total int64) {
	return d.mem.capacity - d.mem.used, d.mem.capacity
}

// AllocCount returns the number of live allocations (for leak tests).
func (d *Device) AllocCount() int { return len(d.mem.allocs) }
