package gpusim

import (
	"errors"
	"testing"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/perfmodel"
)

// TestMarkLostSuppressesCompletions loses a device mid-flight and checks
// that in-flight work never completes: payloads don't run, Done signals
// don't fire, kernel-completion callbacks stop — so a host synchronising
// on the device hangs (deadlock), which is what the cluster watchdog
// exists to catch.
func TestMarkLostSuppressesCompletions(t *testing.T) {
	eng := des.NewEngine()
	dev := NewDevice(eng, perfmodel.TeslaC2050())
	var payloadRan, cbRan bool
	dev.OnKernelComplete = func(KernelRecord) { cbRan = true }

	cost := perfmodel.KernelCost{Fixed: 10 * time.Millisecond}
	op := dev.LaunchKernel(dev.DefaultStream(), "k", cost, [3]int{1, 1, 1}, [3]int{1, 1, 1}, func() { payloadRan = true })

	eng.Spawn("host", func(p *des.Proc) {
		p.Wait(op.Done())
		t.Error("wait on lost device returned")
	})

	// Lose the device strictly before the kernel's end time.
	eng.Schedule(op.End/2, func() { dev.MarkLost() })

	err := eng.Run()
	var dl *des.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("expected deadlock from hung stream, got %v", err)
	}
	if payloadRan {
		t.Error("payload ran on lost device")
	}
	if cbRan {
		t.Error("kernel-completion callback ran on lost device")
	}
	if !dev.Lost() {
		t.Error("Lost() = false after MarkLost")
	}
}

// TestMarkLostIdempotentAndLateEnqueue checks post-loss enqueues are
// accepted but never complete, and MarkLost is idempotent.
func TestMarkLostIdempotentAndLateEnqueue(t *testing.T) {
	eng := des.NewEngine()
	dev := NewDevice(eng, perfmodel.TeslaC2050())
	dev.MarkLost()
	dev.MarkLost()
	ran := false
	op := dev.EnqueueMemset(dev.DefaultStream(), 1<<20, func() { ran = true })
	if err := eng.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if ran {
		t.Error("memset payload ran on lost device")
	}
	if op.Done().Fired() {
		t.Error("Done fired on lost device")
	}
}
