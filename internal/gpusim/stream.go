package gpusim

import (
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/perfmodel"
	"ipmgo/internal/telemetry"
)

// Stream is an in-order execution queue on a device. Stream 0 is the
// legacy NULL stream with barrier semantics (see package docs).
type Stream struct {
	id   int
	dev  *Device
	tail time.Duration // completion of the latest op on this stream
	last *Op

	telTrack string // cached telemetry track name, see Device.streamTrack
	telGen   int    // Device.telGen this cache entry belongs to
}

// ID returns the stream identifier (0 for the NULL stream).
func (s *Stream) ID() int { return s.id }

// Last returns the most recently enqueued operation on the stream, or nil.
// Waiting on its Done signal is equivalent to cudaStreamSynchronize for a
// non-NULL stream.
func (s *Stream) Last() *Op { return s.last }

// Tail returns the virtual time at which all currently enqueued work on
// the stream completes.
func (s *Stream) Tail() time.Duration { return s.tail }

// OpKind classifies device operations.
type OpKind int

const (
	OpKernel OpKind = iota
	OpCopy
	OpMemset
	OpEventRecord
)

func (k OpKind) String() string {
	switch k {
	case OpKernel:
		return "kernel"
	case OpCopy:
		return "copy"
	case OpMemset:
		return "memset"
	case OpEventRecord:
		return "event"
	}
	return "?"
}

// Op is a scheduled device operation. Its timing is fixed at enqueue time
// (the simulator schedules greedily in enqueue order, which is exact for a
// non-preemptive device) and its Done signal fires at completion.
//
// Ops are carved from a device-owned slab and carry their completion
// signal inline, so enqueuing costs no per-op heap allocation; the op
// itself is the des.Runner the engine dispatches at completion time.
type Op struct {
	Kind   OpKind
	Name   string
	Stream int
	Start  time.Duration
	End    time.Duration

	dev     *Device
	payload func()
	done    des.Signal
}

// Done returns the completion signal.
func (o *Op) Done() *des.Signal { return &o.done }

// Run fires the op's completion. It implements des.Runner: the engine
// dispatches the op directly at its end time, with no closure allocated
// at enqueue. On a lost device the completion is suppressed — the Done
// signal never fires, so synchronising hosts hang (see Device.MarkLost).
func (o *Op) Run() {
	if o.dev.lost {
		return
	}
	if fn := o.payload; fn != nil {
		o.payload = nil
		fn()
	}
	o.done.Fire()
}

// Duration returns the operation's execution time.
func (o *Op) Duration() time.Duration { return o.End - o.Start }

// earliest returns the earliest time an op enqueued now on stream s may
// begin, honouring stream order and NULL-stream barrier semantics.
func (d *Device) earliest(s *Stream) time.Duration {
	t := d.eng.Now()
	if s.tail > t {
		t = s.tail
	}
	if s.id == 0 {
		// NULL-stream op waits for everything enqueued so far.
		if d.allTail > t {
			t = d.allTail
		}
	} else if d.nullTail > t {
		// Other streams wait for prior NULL-stream ops.
		t = d.nullTail
	}
	return t
}

// enqueue finalises scheduling of an op that is ready at `start` and runs
// for dur, registering the payload to run at completion.
func (d *Device) enqueue(s *Stream, kind OpKind, name string, start, dur time.Duration, payload func()) *Op {
	end := start + dur
	op := d.newOp()
	op.Kind = kind
	op.Name = name
	op.Stream = s.id
	op.Start = start
	op.End = end
	op.dev = d
	op.payload = payload
	d.eng.InitSignal(&op.done, name)
	s.tail = end
	s.last = op
	if end > d.allTail {
		d.allTail = end
	}
	if s.id == 0 {
		d.nullTail = end
	}
	if d.lastOp == nil || end > d.lastOp.End {
		d.lastOp = op
	}
	d.nOps++
	d.eng.ScheduleRunner(end, op)
	return op
}

// LaunchKernel enqueues a kernel with the given cost model on the stream.
// fn, if non-nil, is the kernel's functional payload, executed at the
// kernel's completion time. grid and block describe the launch
// configuration for profiling records; pass zero values when irrelevant.
func (d *Device) LaunchKernel(s *Stream, name string, cost perfmodel.KernelCost, grid, block [3]int, fn func()) *Op {
	ready := d.earliest(s)
	// The device-side dispatch gap separates launch from execution; it is
	// the constant the paper's event-based timing cannot separate from the
	// kernel itself.
	ready += d.spec.KernelDispatch
	dur := cost.Duration(d.spec)
	start := d.kernelStart(ready, dur)
	op := d.enqueue(s, OpKernel, name, start, dur, fn)
	d.busyKernel += dur
	d.recordStreamSpan(s, telemetry.ClassKernel, op, 0)
	if cb := d.OnKernelComplete; cb != nil {
		rec := KernelRecord{Name: name, Stream: s.id, Start: start, End: op.End, GridDim: grid, BlockDim: block, Cost: cost}
		d.eng.Schedule(op.End, func() {
			if d.lost {
				return
			}
			cb(rec)
		})
	}
	return op
}

// memcpyOpNames pre-interns the per-direction op labels so EnqueueCopy
// does not rebuild the same string on every transfer. The strings must
// stay byte-identical to "memcpy(" + dir.String() + ")".
var memcpyOpNames = [...]string{
	perfmodel.HostToDevice:   "memcpy(H2D)",
	perfmodel.DeviceToHost:   "memcpy(D2H)",
	perfmodel.DeviceToDevice: "memcpy(D2D)",
}

func memcpyOpName(dir perfmodel.TransferDir) string {
	if int(dir) < len(memcpyOpNames) && memcpyOpNames[dir] != "" {
		return memcpyOpNames[dir]
	}
	return "memcpy(" + dir.String() + ")"
}

// pickEngine returns the index of the engine from tails that can start
// soonest (first index on ties, so a single-engine pool behaves exactly
// like the old scalar tail).
func pickEngine(tails []time.Duration) int {
	ei := 0
	for i := 1; i < len(tails); i++ {
		if tails[i] < tails[ei] {
			ei = i
		}
	}
	return ei
}

// EnqueueCopy enqueues a PCIe (or intra-device) copy of n bytes. The copy
// contends for the per-direction copy-engine pool (the C2050 has one DMA
// engine per direction; A100-class devices have more). fn runs at
// completion (the functional data movement).
func (d *Device) EnqueueCopy(s *Stream, dir perfmodel.TransferDir, n int64, pinned bool, fn func()) *Op {
	ready := d.earliest(s)
	engine := -1
	switch dir {
	case perfmodel.HostToDevice:
		engine = pickEngine(d.h2dTails)
		if d.h2dTails[engine] > ready {
			ready = d.h2dTails[engine]
		}
	case perfmodel.DeviceToHost:
		engine = pickEngine(d.d2hTails)
		if d.d2hTails[engine] > ready {
			ready = d.d2hTails[engine]
		}
	}
	dur := perfmodel.TransferCost(d.spec, dir, n, pinned)
	op := d.enqueue(s, OpCopy, memcpyOpName(dir), ready, dur, fn)
	d.busyCopy += dur
	switch dir {
	case perfmodel.HostToDevice:
		d.h2dTails[engine] = op.End
	case perfmodel.DeviceToHost:
		d.d2hTails[engine] = op.End
	}
	if d.tel != nil {
		// One track per copy engine; same-device copies stay on the stream.
		track := ""
		switch dir {
		case perfmodel.HostToDevice:
			track = d.telH2D[engine]
		case perfmodel.DeviceToHost:
			track = d.telD2H[engine]
		default:
			track = d.streamTrack(s)
		}
		d.tel.Record(telemetry.Span{
			Track: track, Name: op.Name, Class: telemetry.ClassCopy,
			Start: op.Start, End: op.End, Bytes: n,
		})
	}
	return op
}

// EnqueueMemset enqueues a device memset of n bytes (memory-bandwidth
// bound, no copy engine involved).
func (d *Device) EnqueueMemset(s *Stream, n int64, fn func()) *Op {
	ready := d.earliest(s)
	sec := float64(n) / (d.spec.MemBandwidthGBs * 1e9)
	dur := time.Duration(sec * float64(time.Second))
	if dur < time.Microsecond {
		dur = time.Microsecond
	}
	op := d.enqueue(s, OpMemset, "memset", ready, dur, fn)
	d.busyMemset += dur
	d.recordStreamSpan(s, telemetry.ClassGPU, op, n)
	return op
}
