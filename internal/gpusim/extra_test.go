package gpusim

import (
	"testing"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/perfmodel"
)

func TestDeviceToDeviceCopyAndMemsetDurations(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	var copyOp, setOp *Op
	e.Spawn("host", func(p *des.Proc) {
		s := d.CreateStream()
		copyOp = d.EnqueueCopy(s, perfmodel.DeviceToDevice, 72e9, false, nil) // 1s at 144/2 GB/s
		setOp = d.EnqueueMemset(s, 144e9, nil)                                // 1s at 144 GB/s
		p.Wait(setOp.Done())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if dur := copyOp.Duration(); dur < 990*time.Millisecond || dur > 1010*time.Millisecond {
		t.Errorf("D2D duration = %v, want ~1s", dur)
	}
	if dur := setOp.Duration(); dur < 990*time.Millisecond || dur > 1010*time.Millisecond {
		t.Errorf("memset duration = %v, want ~1s", dur)
	}
	// Tiny memset has the floor.
	e2 := des.NewEngine()
	d2 := NewDevice(e2, testSpec())
	op := d2.EnqueueMemset(d2.DefaultStream(), 1, nil)
	if op.Duration() != time.Microsecond {
		t.Errorf("memset floor = %v", op.Duration())
	}
}

func TestOpMetadata(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	s := d.CreateStream()
	op := d.EnqueueCopy(s, perfmodel.HostToDevice, 1000, false, nil)
	if op.Kind != OpCopy || op.Name != "memcpy(H2D)" || op.Stream != s.ID() {
		t.Errorf("op metadata = %+v", op)
	}
	if OpKernel.String() != "kernel" || OpCopy.String() != "copy" ||
		OpMemset.String() != "memset" || OpEventRecord.String() != "event" || OpKind(9).String() != "?" {
		t.Error("OpKind strings wrong")
	}
	if s.Tail() != op.End {
		t.Errorf("stream tail = %v, want %v", s.Tail(), op.End)
	}
}

func TestEventRerecordResetsCompletion(t *testing.T) {
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	ev := d.NewEvent()
	e.Spawn("host", func(p *des.Proc) {
		s := d.CreateStream()
		ev.Record(s)
		p.Wait(ev.Done())
		first, _ := ev.Timestamp()
		// Re-record after more work: the timestamp must move.
		d.LaunchKernel(s, "k", perfmodel.KernelCost{Fixed: 10 * time.Millisecond}, [3]int{}, [3]int{}, nil)
		ev.Record(s)
		if ev.Query() {
			t.Error("re-recorded event still reports ready")
		}
		p.Wait(ev.Done())
		second, _ := ev.Timestamp()
		if second <= first {
			t.Errorf("timestamps did not advance: %v -> %v", first, second)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestViewsCopyInOut(t *testing.T) {
	b := make([]byte, F64Bytes(4))
	v := Float64s(b)
	v.CopyIn([]float64{1.5, -2.5, 3.25, 0})
	if v.Len() != 4 || v.At(1) != -2.5 {
		t.Errorf("f64 view: len=%d at1=%v", v.Len(), v.At(1))
	}
	out := make([]float64, 4)
	v.CopyOut(out)
	if out[2] != 3.25 {
		t.Errorf("copyout = %v", out)
	}

	cb := make([]byte, C128Bytes(2))
	cv := Complex128s(cb)
	cv.CopyIn([]complex128{1 + 2i, -3 - 4i})
	if cv.Len() != 2 || cv.At(1) != -3-4i {
		t.Errorf("c128 view: len=%d at1=%v", cv.Len(), cv.At(1))
	}
	cout := make([]complex128, 2)
	cv.CopyOut(cout)
	if cout[0] != 1+2i {
		t.Errorf("c128 copyout = %v", cout)
	}
}

func TestDevPtrHelpers(t *testing.T) {
	var null DevPtr
	if !null.IsNull() {
		t.Error("zero DevPtr not null")
	}
	e := des.NewEngine()
	d := NewDevice(e, testSpec())
	p, _ := d.Alloc(100)
	if p.IsNull() {
		t.Error("allocated pointer is null")
	}
	q := p.Offset(10)
	if q.String() == "" || q.IsNull() {
		t.Error("offset pointer malformed")
	}
	if _, err := d.Alloc(-1); err == nil {
		t.Error("negative alloc accepted")
	}
}
