package ipmmpi

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"ipmgo/internal/ipm"
	"ipmgo/internal/mpisim"
)

// Profile-aggregation tag space, above anything applications use.
const (
	tagProfileSize = 1<<20 + iota
	tagProfileData
)

// GatherProfiles performs IPM's in-band finalisation: every rank
// serialises its monitor snapshot (as a single-task XML log) and ships it
// to rank 0 over MPI, where the job profile is assembled. Rank 0 returns
// the profile; other ranks return nil. This is the communication pattern
// that lets IPM aggregate at the full machine scale without a side
// channel; the paper's predecessor work demonstrates it to tens of
// thousands of cores, and BenchmarkInBandAggregation measures its cost
// here.
//
// The transfer is a size-prefixed linear gather: profile blobs differ per
// rank, so each rank first sends an 8-byte length, then the blob.
func GatherProfiles(c mpisim.Comm, m *ipm.Monitor, command string, nodes int) (*ipm.JobProfile, error) {
	local := ipm.Snapshot(m)
	if c.Rank() != 0 {
		blob, err := encodeRankProfile(command, nodes, local)
		if err != nil {
			return nil, err
		}
		size := make([]byte, 8)
		binary.LittleEndian.PutUint64(size, uint64(len(blob)))
		if err := c.Send(size, 0, tagProfileSize); err != nil {
			return nil, err
		}
		if err := c.Send(blob, 0, tagProfileData); err != nil {
			return nil, err
		}
		return nil, nil
	}

	ranks := make([]ipm.RankProfile, 0, c.Size())
	ranks = append(ranks, local)
	for src := 1; src < c.Size(); src++ {
		size := make([]byte, 8)
		if _, err := c.Recv(size, src, tagProfileSize); err != nil {
			return nil, fmt.Errorf("ipmmpi: gather size from %d: %w", src, err)
		}
		n := binary.LittleEndian.Uint64(size)
		blob := make([]byte, n)
		if _, err := c.Recv(blob, src, tagProfileData); err != nil {
			return nil, fmt.Errorf("ipmmpi: gather profile from %d: %w", src, err)
		}
		rp, err := decodeRankProfile(blob)
		if err != nil {
			return nil, fmt.Errorf("ipmmpi: decode profile from %d: %w", src, err)
		}
		ranks = append(ranks, rp)
	}
	return ipm.NewJobProfile(command, nodes, ranks), nil
}

// encodeRankProfile serialises one rank's profile as a single-task IPM
// XML log.
func encodeRankProfile(command string, nodes int, rp ipm.RankProfile) ([]byte, error) {
	var buf bytes.Buffer
	jp := ipm.NewJobProfile(command, nodes, []ipm.RankProfile{rp})
	if err := ipm.WriteXML(&buf, jp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeRankProfile parses a single-task log back into a rank profile.
func decodeRankProfile(blob []byte) (ipm.RankProfile, error) {
	jp, err := ipm.ParseXML(bytes.NewReader(blob))
	if err != nil {
		return ipm.RankProfile{}, err
	}
	if jp.NTasks() != 1 {
		return ipm.RankProfile{}, fmt.Errorf("expected single-task log, got %d tasks", jp.NTasks())
	}
	return jp.Ranks[0], nil
}
