package ipmmpi

import (
	"fmt"
	"testing"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/ipm"
	"ipmgo/internal/mpisim"
	"ipmgo/internal/perfmodel"
)

// runMonitored spawns size monitored ranks and returns their monitors.
func runMonitored(t *testing.T, size int, fn func(c mpisim.Comm)) []*ipm.Monitor {
	t.Helper()
	e := des.NewEngine()
	w, err := mpisim.NewWorld(e, mpisim.Config{Size: size, Net: perfmodel.QDRInfiniBand()})
	if err != nil {
		t.Fatal(err)
	}
	mons := make([]*ipm.Monitor, size)
	for r := 0; r < size; r++ {
		r := r
		e.Spawn(fmt.Sprintf("rank%d", r), func(p *des.Proc) {
			inner, err := w.Attach(r, p)
			if err != nil {
				t.Error(err)
				return
			}
			mons[r] = ipm.NewMonitor(r, fmt.Sprintf("node%d", w.NodeOf(r)), "app", p.Now, 0)
			mons[r].Start()
			fn(Wrap(inner, mons[r]))
			mons[r].Stop()
		})
	}
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	return mons
}

func stat(m *ipm.Monitor, name string) ipm.Stats {
	var s ipm.Stats
	for _, e := range m.Table().Entries() {
		if e.Sig.Name == name {
			s.Merge(e.Stats)
		}
	}
	return s
}

func TestSendRecvMonitored(t *testing.T) {
	mons := runMonitored(t, 2, func(c mpisim.Comm) {
		if c.Rank() == 0 {
			c.Send(make([]byte, 4096), 1, 0)
		} else {
			buf := make([]byte, 4096)
			c.Recv(buf, 0, 0)
		}
	})
	if s := stat(mons[0], "MPI_Send"); s.Count != 1 || s.Total == 0 {
		t.Errorf("MPI_Send = %+v", s)
	}
	if s := stat(mons[1], "MPI_Recv"); s.Count != 1 {
		t.Errorf("MPI_Recv = %+v", s)
	}
	// Bytes attribute present in the signature.
	found := false
	for _, e := range mons[0].Table().Entries() {
		if e.Sig.Name == "MPI_Send" && e.Sig.Bytes == 4096 {
			found = true
		}
	}
	if !found {
		t.Error("MPI_Send signature missing bytes attribute")
	}
}

func TestCollectivesMonitored(t *testing.T) {
	mons := runMonitored(t, 4, func(c mpisim.Comm) {
		recv := make([]byte, 8)
		c.Allreduce(mpisim.Float64Bytes([]float64{1}), recv, mpisim.OpSum)
		c.Barrier()
		data := make([]byte, 64)
		c.Bcast(data, 0)
		all := make([]byte, 4*8)
		c.Allgather(make([]byte, 8), all)
	})
	for r, m := range mons {
		for _, name := range []string{"MPI_Allreduce", "MPI_Barrier", "MPI_Bcast", "MPI_Allgather"} {
			if s := stat(m, name); s.Count != 1 {
				t.Errorf("rank %d %s count = %d", r, name, s.Count)
			}
		}
	}
}

func TestWaitTimeCapturesLateSender(t *testing.T) {
	mons := runMonitored(t, 2, func(c mpisim.Comm) {
		if c.Rank() == 0 {
			c.Proc().Sleep(500 * time.Millisecond) // late sender
			c.Send(make([]byte, 8), 1, 0)
		} else {
			buf := make([]byte, 8)
			req, _ := c.Irecv(buf, 0, 0)
			c.Wait(req)
		}
	})
	if s := stat(mons[1], "MPI_Wait"); s.Total < 400*time.Millisecond {
		t.Errorf("MPI_Wait = %v, want ~500ms of blocking", s.Total)
	}
	if s := stat(mons[1], "MPI_Irecv"); s.Total > 10*time.Millisecond {
		t.Errorf("MPI_Irecv = %v, want cheap", s.Total)
	}
}

func TestPcontrolRegions(t *testing.T) {
	mons := runMonitored(t, 2, func(c mpisim.Comm) {
		mc := c.(*Comm)
		c.Barrier()
		mc.Pcontrol(1, "solve")
		c.Barrier()
		mc.Pcontrol(-1, "solve")
		c.Barrier()
	})
	var regions []string
	for _, e := range mons[0].Table().Entries() {
		if e.Sig.Name == "MPI_Barrier" {
			regions = append(regions, e.Sig.Region)
		}
	}
	if len(regions) != 2 { // global (2 calls merged) + solve (1 call)
		t.Fatalf("regions = %v", regions)
	}
}

func TestResultsUnchangedByMonitoring(t *testing.T) {
	runMonitored(t, 4, func(c mpisim.Comm) {
		recv := make([]byte, 8)
		if err := c.Allreduce(mpisim.Float64Bytes([]float64{float64(c.Rank())}), recv, mpisim.OpSum); err != nil {
			t.Error(err)
		}
		if got := mpisim.BytesFloat64(recv)[0]; got != 6 { // 0+1+2+3
			t.Errorf("monitored allreduce = %v, want 6", got)
		}
	})
}

func TestAllWrappersRecord(t *testing.T) {
	mons := runMonitored(t, 2, func(c mpisim.Comm) {
		peer := 1 - c.Rank()
		req1, _ := c.Isend([]byte{1}, peer, 0)
		buf := make([]byte, 1)
		req2, _ := c.Irecv(buf, peer, 0)
		c.Waitall([]*mpisim.Request{req1, req2})
		recv := make([]byte, 8)
		c.Reduce(mpisim.Float64Bytes([]float64{1}), recv, mpisim.OpSum, 0)
		out := make([]byte, 1)
		var send []byte
		if c.Rank() == 0 {
			send = []byte{0, 1}
		}
		c.Scatter(send, out, 0)
		var grecv []byte
		if c.Rank() == 0 {
			grecv = make([]byte, 2)
		}
		c.Gather([]byte{9}, grecv, 0)
		a2a := make([]byte, 2)
		c.Alltoall([]byte{3, 4}, a2a)
	})
	for _, name := range []string{"MPI_Isend", "MPI_Irecv", "MPI_Waitall", "MPI_Reduce",
		"MPI_Scatter", "MPI_Gather", "MPI_Alltoall"} {
		if s := stat(mons[0], name); s.Count != 1 {
			t.Errorf("%s count = %d, want 1", name, s.Count)
		}
	}
}
