// Package ipmmpi is IPM's original MPI monitoring layer: a decorator
// around mpisim.Comm that times every MPI call and records it in the
// performance hash table with the transferred byte count as the signature
// attribute — the PMPI-style interposition IPM was built on before the
// CUDA extension.
package ipmmpi

import (
	"ipmgo/internal/ipm"
	"ipmgo/internal/mpisim"

	"ipmgo/internal/des"
)

// Comm wraps an mpisim.Comm with IPM monitoring. It implements
// mpisim.Comm.
type Comm struct {
	inner mpisim.Comm
	mon   *ipm.Monitor
}

var _ mpisim.Comm = (*Comm)(nil)

// Wrap interposes IPM between the application and MPI.
func Wrap(inner mpisim.Comm, mon *ipm.Monitor) *Comm {
	return &Comm{inner: inner, mon: mon}
}

// Pre-hashed signature handles, one per monitored MPI symbol: the name is
// hashed once at package init, never on the per-call fast path.
var (
	refSend      = ipm.NewSigRef("MPI_Send")
	refRecv      = ipm.NewSigRef("MPI_Recv")
	refIsend     = ipm.NewSigRef("MPI_Isend")
	refIrecv     = ipm.NewSigRef("MPI_Irecv")
	refWait      = ipm.NewSigRef("MPI_Wait")
	refWaitall   = ipm.NewSigRef("MPI_Waitall")
	refBarrier   = ipm.NewSigRef("MPI_Barrier")
	refBcast     = ipm.NewSigRef("MPI_Bcast")
	refReduce    = ipm.NewSigRef("MPI_Reduce")
	refAllreduce = ipm.NewSigRef("MPI_Allreduce")
	refGather    = ipm.NewSigRef("MPI_Gather")
	refAllgather = ipm.NewSigRef("MPI_Allgather")
	refScatter   = ipm.NewSigRef("MPI_Scatter")
	refAlltoall  = ipm.NewSigRef("MPI_Alltoall")
)

// IPM returns the underlying monitor.
func (c *Comm) IPM() *ipm.Monitor { return c.mon }

// Rank returns the MPI rank.
func (c *Comm) Rank() int { return c.inner.Rank() }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.inner.Size() }

// Proc returns the host process.
func (c *Comm) Proc() *des.Proc { return c.inner.Proc() }

func (c *Comm) timed(ref ipm.SigRef, bytes int64, fn func()) {
	begin := c.mon.Now()
	fn()
	c.mon.ObserveRef(ref, bytes, c.mon.Now()-begin)
}

// Send wraps MPI_Send.
func (c *Comm) Send(data []byte, dest, tag int) error {
	var err error
	c.timed(refSend, int64(len(data)), func() { err = c.inner.Send(data, dest, tag) })
	return err
}

// Recv wraps MPI_Recv.
func (c *Comm) Recv(buf []byte, source, tag int) (mpisim.Status, error) {
	var st mpisim.Status
	var err error
	c.timed(refRecv, int64(len(buf)), func() { st, err = c.inner.Recv(buf, source, tag) })
	return st, err
}

// Isend wraps MPI_Isend.
func (c *Comm) Isend(data []byte, dest, tag int) (*mpisim.Request, error) {
	var req *mpisim.Request
	var err error
	c.timed(refIsend, int64(len(data)), func() { req, err = c.inner.Isend(data, dest, tag) })
	return req, err
}

// Irecv wraps MPI_Irecv.
func (c *Comm) Irecv(buf []byte, source, tag int) (*mpisim.Request, error) {
	var req *mpisim.Request
	var err error
	c.timed(refIrecv, int64(len(buf)), func() { req, err = c.inner.Irecv(buf, source, tag) })
	return req, err
}

// Wait wraps MPI_Wait.
func (c *Comm) Wait(req *mpisim.Request) (mpisim.Status, error) {
	var st mpisim.Status
	var err error
	c.timed(refWait, 0, func() { st, err = c.inner.Wait(req) })
	return st, err
}

// Waitall wraps MPI_Waitall.
func (c *Comm) Waitall(reqs []*mpisim.Request) error {
	var err error
	c.timed(refWaitall, 0, func() { err = c.inner.Waitall(reqs) })
	return err
}

// Barrier wraps MPI_Barrier.
func (c *Comm) Barrier() error {
	var err error
	c.timed(refBarrier, 0, func() { err = c.inner.Barrier() })
	return err
}

// Bcast wraps MPI_Bcast.
func (c *Comm) Bcast(data []byte, root int) error {
	var err error
	c.timed(refBcast, int64(len(data)), func() { err = c.inner.Bcast(data, root) })
	return err
}

// Reduce wraps MPI_Reduce.
func (c *Comm) Reduce(send, recv []byte, op mpisim.Op, root int) error {
	var err error
	c.timed(refReduce, int64(len(send)), func() { err = c.inner.Reduce(send, recv, op, root) })
	return err
}

// Allreduce wraps MPI_Allreduce.
func (c *Comm) Allreduce(send, recv []byte, op mpisim.Op) error {
	var err error
	c.timed(refAllreduce, int64(len(send)), func() { err = c.inner.Allreduce(send, recv, op) })
	return err
}

// Gather wraps MPI_Gather.
func (c *Comm) Gather(send, recv []byte, root int) error {
	var err error
	c.timed(refGather, int64(len(send)), func() { err = c.inner.Gather(send, recv, root) })
	return err
}

// Allgather wraps MPI_Allgather.
func (c *Comm) Allgather(send, recv []byte) error {
	var err error
	c.timed(refAllgather, int64(len(send)), func() { err = c.inner.Allgather(send, recv) })
	return err
}

// Scatter wraps MPI_Scatter.
func (c *Comm) Scatter(send, recv []byte, root int) error {
	var err error
	c.timed(refScatter, int64(len(recv)), func() { err = c.inner.Scatter(send, recv, root) })
	return err
}

// Alltoall wraps MPI_Alltoall.
func (c *Comm) Alltoall(send, recv []byte) error {
	var err error
	c.timed(refAlltoall, int64(len(send)), func() { err = c.inner.Alltoall(send, recv) })
	return err
}

// Pcontrol implements IPM's region interface (MPI_Pcontrol in the real
// tool): level 1 enters the named region, level -1 exits it.
func (c *Comm) Pcontrol(level int, name string) {
	switch {
	case level > 0:
		c.mon.EnterRegion(name)
	case level < 0:
		c.mon.ExitRegion()
	}
}
