// Package ipmmpi is IPM's original MPI monitoring layer: a decorator
// around mpisim.Comm that times every MPI call and records it in the
// performance hash table with the transferred byte count as the signature
// attribute — the PMPI-style interposition IPM was built on before the
// CUDA extension.
package ipmmpi

import (
	"ipmgo/internal/ipm"
	"ipmgo/internal/mpisim"

	"ipmgo/internal/des"
)

// Comm wraps an mpisim.Comm with IPM monitoring. It implements
// mpisim.Comm.
type Comm struct {
	inner mpisim.Comm
	mon   *ipm.Monitor
}

var _ mpisim.Comm = (*Comm)(nil)

// Wrap interposes IPM between the application and MPI.
func Wrap(inner mpisim.Comm, mon *ipm.Monitor) *Comm {
	return &Comm{inner: inner, mon: mon}
}

// Pre-hashed signature handles, one per monitored MPI symbol: the name is
// hashed once at package init, never on the per-call fast path.
var (
	refSend      = ipm.NewSigRef("MPI_Send")
	refRecv      = ipm.NewSigRef("MPI_Recv")
	refIsend     = ipm.NewSigRef("MPI_Isend")
	refIrecv     = ipm.NewSigRef("MPI_Irecv")
	refWait      = ipm.NewSigRef("MPI_Wait")
	refWaitall   = ipm.NewSigRef("MPI_Waitall")
	refBarrier   = ipm.NewSigRef("MPI_Barrier")
	refBcast     = ipm.NewSigRef("MPI_Bcast")
	refReduce    = ipm.NewSigRef("MPI_Reduce")
	refAllreduce = ipm.NewSigRef("MPI_Allreduce")
	refGather    = ipm.NewSigRef("MPI_Gather")
	refAllgather = ipm.NewSigRef("MPI_Allgather")
	refScatter   = ipm.NewSigRef("MPI_Scatter")
	refAlltoall  = ipm.NewSigRef("MPI_Alltoall")
)

// IPM returns the underlying monitor.
func (c *Comm) IPM() *ipm.Monitor { return c.mon }

// Rank returns the MPI rank.
func (c *Comm) Rank() int { return c.inner.Rank() }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.inner.Size() }

// Proc returns the host process.
func (c *Comm) Proc() *des.Proc { return c.inner.Proc() }

// timedE times fn and records it under ref; a non-nil error additionally
// increments the signature's error counter. Unlike CUDA, MPI has no
// "not ready" polling status — every failure is a real failure (in this
// fault model, a broken communicator or dead peer), so all of them count.
func (c *Comm) timedE(ref ipm.SigRef, bytes int64, fn func() error) error {
	begin := c.mon.Now()
	err := fn()
	d := c.mon.Now() - begin
	if err != nil {
		c.mon.ObserveErrRef(ref, bytes, d)
	} else {
		c.mon.ObserveRef(ref, bytes, d)
	}
	return err
}

// Send wraps MPI_Send.
func (c *Comm) Send(data []byte, dest, tag int) error {
	return c.timedE(refSend, int64(len(data)), func() error { return c.inner.Send(data, dest, tag) })
}

// Recv wraps MPI_Recv.
func (c *Comm) Recv(buf []byte, source, tag int) (mpisim.Status, error) {
	var st mpisim.Status
	err := c.timedE(refRecv, int64(len(buf)), func() (e error) { st, e = c.inner.Recv(buf, source, tag); return e })
	return st, err
}

// Isend wraps MPI_Isend.
func (c *Comm) Isend(data []byte, dest, tag int) (*mpisim.Request, error) {
	var req *mpisim.Request
	err := c.timedE(refIsend, int64(len(data)), func() (e error) { req, e = c.inner.Isend(data, dest, tag); return e })
	return req, err
}

// Irecv wraps MPI_Irecv.
func (c *Comm) Irecv(buf []byte, source, tag int) (*mpisim.Request, error) {
	var req *mpisim.Request
	err := c.timedE(refIrecv, int64(len(buf)), func() (e error) { req, e = c.inner.Irecv(buf, source, tag); return e })
	return req, err
}

// Wait wraps MPI_Wait.
func (c *Comm) Wait(req *mpisim.Request) (mpisim.Status, error) {
	var st mpisim.Status
	err := c.timedE(refWait, 0, func() (e error) { st, e = c.inner.Wait(req); return e })
	return st, err
}

// Waitall wraps MPI_Waitall.
func (c *Comm) Waitall(reqs []*mpisim.Request) error {
	return c.timedE(refWaitall, 0, func() error { return c.inner.Waitall(reqs) })
}

// Barrier wraps MPI_Barrier.
func (c *Comm) Barrier() error {
	return c.timedE(refBarrier, 0, func() error { return c.inner.Barrier() })
}

// Bcast wraps MPI_Bcast.
func (c *Comm) Bcast(data []byte, root int) error {
	return c.timedE(refBcast, int64(len(data)), func() error { return c.inner.Bcast(data, root) })
}

// Reduce wraps MPI_Reduce.
func (c *Comm) Reduce(send, recv []byte, op mpisim.Op, root int) error {
	return c.timedE(refReduce, int64(len(send)), func() error { return c.inner.Reduce(send, recv, op, root) })
}

// Allreduce wraps MPI_Allreduce.
func (c *Comm) Allreduce(send, recv []byte, op mpisim.Op) error {
	return c.timedE(refAllreduce, int64(len(send)), func() error { return c.inner.Allreduce(send, recv, op) })
}

// Gather wraps MPI_Gather.
func (c *Comm) Gather(send, recv []byte, root int) error {
	return c.timedE(refGather, int64(len(send)), func() error { return c.inner.Gather(send, recv, root) })
}

// Allgather wraps MPI_Allgather.
func (c *Comm) Allgather(send, recv []byte) error {
	return c.timedE(refAllgather, int64(len(send)), func() error { return c.inner.Allgather(send, recv) })
}

// Scatter wraps MPI_Scatter.
func (c *Comm) Scatter(send, recv []byte, root int) error {
	return c.timedE(refScatter, int64(len(recv)), func() error { return c.inner.Scatter(send, recv, root) })
}

// Alltoall wraps MPI_Alltoall.
func (c *Comm) Alltoall(send, recv []byte) error {
	return c.timedE(refAlltoall, int64(len(send)), func() error { return c.inner.Alltoall(send, recv) })
}

// Pcontrol implements IPM's region interface (MPI_Pcontrol in the real
// tool): level 1 enters the named region, level -1 exits it.
func (c *Comm) Pcontrol(level int, name string) {
	switch {
	case level > 0:
		c.mon.EnterRegion(name)
	case level < 0:
		c.mon.ExitRegion()
	}
}
