package ipmmpi

import (
	"fmt"
	"testing"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/ipm"
	"ipmgo/internal/mpisim"
	"ipmgo/internal/perfmodel"
)

func TestGatherProfilesAssemblesJob(t *testing.T) {
	const size = 8
	e := des.NewEngine()
	w, err := mpisim.NewWorld(e, mpisim.Config{Size: size, Net: perfmodel.QDRInfiniBand(), RanksPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	var assembled *ipm.JobProfile
	for r := 0; r < size; r++ {
		r := r
		e.Spawn(fmt.Sprintf("rank%d", r), func(p *des.Proc) {
			inner, err := w.Attach(r, p)
			if err != nil {
				t.Error(err)
				return
			}
			mon := ipm.NewMonitor(r, fmt.Sprintf("node%d", w.NodeOf(r)), "app", p.Now, 0)
			mon.Start()
			c := Wrap(inner, mon)

			// Distinct per-rank workload so aggregation is testable.
			mon.Observe("cudaLaunch", 0, time.Duration(r+1)*time.Millisecond)
			mon.EnterRegion("solve")
			mon.Observe("MPI_Allreduce", 64, 2*time.Millisecond)
			mon.ExitRegion()
			p.Sleep(time.Duration(r) * time.Millisecond)
			mon.Stop()

			jp, err := GatherProfiles(c, mon, "app", w.Nodes())
			if err != nil {
				t.Error(err)
				return
			}
			if r == 0 {
				assembled = jp
			} else if jp != nil {
				t.Errorf("rank %d got a non-nil profile", r)
			}
		})
	}
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	if assembled == nil {
		t.Fatal("rank 0 did not assemble a profile")
	}
	if assembled.NTasks() != size || assembled.Nodes != 4 {
		t.Fatalf("layout: %d tasks, %d nodes", assembled.NTasks(), assembled.Nodes)
	}
	// Ranks are sorted and carry their own entries.
	for r := 0; r < size; r++ {
		rp := assembled.Ranks[r]
		if rp.Rank != r {
			t.Fatalf("rank order: %d at %d", rp.Rank, r)
		}
		want := time.Duration(r+1) * time.Millisecond
		got := rp.FuncTime("cudaLaunch")
		if d := got - want; d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("rank %d cudaLaunch = %v, want %v", r, got, want)
		}
	}
	// Regions survive the wire format.
	foundRegion := false
	for _, e := range assembled.Ranks[3].Entries {
		if e.Sig.Name == "MPI_Allreduce" && e.Sig.Region == "solve" {
			foundRegion = true
		}
	}
	if !foundRegion {
		t.Error("region lost in aggregation")
	}
}

// BenchmarkInBandAggregation measures the virtual-time cost of the
// finalisation gather as the job grows, the scalability concern of
// always-on monitoring. The reported metric is aggregation virtual time
// in milliseconds at the largest size.
func BenchmarkInBandAggregation(b *testing.B) {
	for _, size := range []int{16, 64, 256} {
		size := size
		b.Run(fmt.Sprintf("ranks-%d", size), func(b *testing.B) {
			var virtualMS float64
			for i := 0; i < b.N; i++ {
				e := des.NewEngine()
				w, err := mpisim.NewWorld(e, mpisim.Config{Size: size, Net: perfmodel.QDRInfiniBand(), RanksPerNode: 8})
				if err != nil {
					b.Fatal(err)
				}
				var aggTime time.Duration
				for r := 0; r < size; r++ {
					r := r
					e.Spawn(fmt.Sprintf("rank%d", r), func(p *des.Proc) {
						inner, _ := w.Attach(r, p)
						mon := ipm.NewMonitor(r, "n", "app", p.Now, 0)
						mon.Start()
						c := Wrap(inner, mon)
						for k := 0; k < 100; k++ {
							mon.Observe("cudaLaunch", 0, time.Microsecond)
							mon.Observe("MPI_Send", int64(k*8), time.Microsecond)
						}
						mon.Stop()
						c.Barrier()
						t0 := p.Now()
						if _, err := GatherProfiles(c, mon, "app", w.Nodes()); err != nil {
							panic(err)
						}
						if r == 0 {
							aggTime = p.Now() - t0
						}
					})
				}
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
				virtualMS = float64(aggTime) / float64(time.Millisecond)
			}
			b.ReportMetric(virtualMS, "agg-virtual-ms")
		})
	}
}
