package cufft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ipmgo/internal/cudart"
	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

func fastSpec() perfmodel.GPUSpec {
	s := perfmodel.TeslaC2050()
	s.ContextInit = 0
	s.APICallCost = 0
	return s
}

func withLib(t *testing.T, fn func(l *Lib, rt *cudart.Runtime)) {
	t.Helper()
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, fastSpec())
	e.Spawn("host", func(p *des.Proc) {
		rt := cudart.NewRuntime(p, dev, cudart.Options{})
		fn(New(rt), rt)
	})
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
}

// runZ2Z uploads data, executes the plan in place, and returns the result.
func runZ2Z(t *testing.T, l *Lib, rt *cudart.Runtime, plan Plan, data []complex128, dir int) []complex128 {
	t.Helper()
	n := len(data)
	d, err := rt.Malloc(gpusim.C128Bytes(n))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Free(d)
	buf := make([]byte, gpusim.C128Bytes(n))
	gpusim.Complex128s(buf).CopyIn(data)
	if err := rt.Memcpy(cudart.DevicePtr(d), cudart.HostPtr(buf), int64(len(buf)), cudart.MemcpyHostToDevice); err != nil {
		t.Fatal(err)
	}
	if err := l.ExecZ2Z(plan, d, d, dir); err != nil {
		t.Fatal(err)
	}
	if err := rt.Memcpy(cudart.HostPtr(buf), cudart.DevicePtr(d), int64(len(buf)), cudart.MemcpyDeviceToHost); err != nil {
		t.Fatal(err)
	}
	out := make([]complex128, n)
	gpusim.Complex128s(buf).CopyOut(out)
	return out
}

// refDFT is the direct O(n^2) reference.
func refDFT(x []complex128, sign float64) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			out[k] += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
	}
	return out
}

func close2(a, b []complex128, tol float64) bool {
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestFFTMatchesDFTPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]complex128, 16)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := refDFT(data, -1)
	withLib(t, func(l *Lib, rt *cudart.Runtime) {
		plan, err := l.Plan1d(16, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := runZ2Z(t, l, rt, plan, data, Forward)
		if !close2(got, want, 1e-9) {
			t.Errorf("fft16 mismatch:\n got %v\nwant %v", got, want)
		}
		l.Destroy(plan)
	})
}

func TestFFTNonPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]complex128, 12)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := refDFT(data, -1)
	withLib(t, func(l *Lib, rt *cudart.Runtime) {
		plan, _ := l.Plan1d(12, 1)
		got := runZ2Z(t, l, rt, plan, data, Forward)
		if !close2(got, want, 1e-9) {
			t.Error("non-pow2 fft mismatch")
		}
	})
}

func TestFFTDeltaIsConstant(t *testing.T) {
	// DFT of a delta impulse is all ones.
	data := make([]complex128, 8)
	data[0] = 1
	withLib(t, func(l *Lib, rt *cudart.Runtime) {
		plan, _ := l.Plan1d(8, 1)
		got := runZ2Z(t, l, rt, plan, data, Forward)
		for i, v := range got {
			if cmplx.Abs(v-1) > 1e-12 {
				t.Errorf("delta fft[%d] = %v", i, v)
			}
		}
	})
}

// Property: forward then inverse equals the original scaled by N
// (CUFFT transforms are unnormalised).
func TestPropRoundTripScalesByN(t *testing.T) {
	prop := func(seed int64, pow uint8) bool {
		n := 1 << (pow%6 + 1) // 2..64
		rng := rand.New(rand.NewSource(seed))
		data := make([]complex128, n)
		for i := range data {
			data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		ok := true
		withLib(t, func(l *Lib, rt *cudart.Runtime) {
			plan, _ := l.Plan1d(n, 1)
			fwd := runZ2Z(t, l, rt, plan, data, Forward)
			back := runZ2Z(t, l, rt, plan, fwd, Inverse)
			for i := range data {
				if cmplx.Abs(back[i]-complex(float64(n), 0)*data[i]) > 1e-8*float64(n) {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: linearity — FFT(a*x + y) = a*FFT(x) + FFT(y).
func TestPropLinearity(t *testing.T) {
	prop := func(seed int64) bool {
		const n = 32
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		y := make([]complex128, n)
		z := make([]complex128, n)
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			z[i] = a*x[i] + y[i]
		}
		ok := true
		withLib(t, func(l *Lib, rt *cudart.Runtime) {
			plan, _ := l.Plan1d(n, 1)
			fx := runZ2Z(t, l, rt, plan, x, Forward)
			fy := runZ2Z(t, l, rt, plan, y, Forward)
			fz := runZ2Z(t, l, rt, plan, z, Forward)
			for i := range fz {
				if cmplx.Abs(fz[i]-(a*fx[i]+fy[i])) > 1e-8 {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBatchedTransforms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const nx, batch = 8, 3
	data := make([]complex128, nx*batch)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), 0)
	}
	var want []complex128
	for b := 0; b < batch; b++ {
		want = append(want, refDFT(data[b*nx:(b+1)*nx], -1)...)
	}
	withLib(t, func(l *Lib, rt *cudart.Runtime) {
		plan, _ := l.Plan1d(nx, batch)
		got := runZ2Z(t, l, rt, plan, data, Forward)
		if !close2(got, want, 1e-9) {
			t.Error("batched fft mismatch")
		}
	})
}

func TestPlan2d(t *testing.T) {
	// 2D delta -> all ones.
	const nx, ny = 4, 8
	data := make([]complex128, nx*ny)
	data[0] = 1
	withLib(t, func(l *Lib, rt *cudart.Runtime) {
		plan, err := l.Plan2d(nx, ny)
		if err != nil {
			t.Fatal(err)
		}
		got := runZ2Z(t, l, rt, plan, data, Forward)
		for i, v := range got {
			if cmplx.Abs(v-1) > 1e-12 {
				t.Errorf("2d delta fft[%d] = %v", i, v)
			}
		}
	})
}

func TestPlanErrors(t *testing.T) {
	withLib(t, func(l *Lib, rt *cudart.Runtime) {
		if _, err := l.Plan1d(0, 1); err == nil {
			t.Error("zero-length plan accepted")
		}
		if _, err := l.Plan1d(8, 0); err == nil {
			t.Error("zero batch accepted")
		}
		if _, err := l.Plan2d(-1, 4); err == nil {
			t.Error("negative 2d plan accepted")
		}
		if err := l.ExecZ2Z(Plan(99), cudart.DevPtr{}, cudart.DevPtr{}, Forward); err == nil {
			t.Error("invalid plan accepted")
		}
		plan, _ := l.Plan1d(8, 1)
		if err := l.ExecZ2Z(plan, cudart.DevPtr{}, cudart.DevPtr{}, 0); err == nil {
			t.Error("invalid direction accepted")
		}
		if err := l.Destroy(plan); err != nil {
			t.Error(err)
		}
		if err := l.Destroy(plan); err == nil {
			t.Error("double destroy accepted")
		}
	})
}

func TestFFTTimeScalesWithSize(t *testing.T) {
	timeFor := func(n int) time.Duration {
		e := des.NewEngine()
		dev := gpusim.NewDevice(e, fastSpec())
		e.Spawn("host", func(p *des.Proc) {
			rt := cudart.NewRuntime(p, dev, cudart.Options{})
			l := New(rt)
			plan, _ := l.Plan1d(n, 1)
			d, _ := rt.Malloc(gpusim.C128Bytes(n))
			l.ExecZ2Z(plan, d, d, Forward)
			rt.ThreadSynchronize()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	if small, big := timeFor(1<<10), timeFor(1<<18); big <= small {
		t.Errorf("FFT 2^18 (%v) not slower than 2^10 (%v)", big, small)
	}
}
