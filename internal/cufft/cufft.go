// Package cufft simulates NVIDIA's CUFFT library (the CUDA-3.x API: plan
// creation, cufftExecZ2Z, plan destruction) over the simulated runtime.
//
// Transforms are functional: ExecZ2Z really computes the DFT of the data
// in simulated device memory (iterative radix-2 Cooley-Tukey for
// power-of-two lengths, direct DFT otherwise), following CUFFT's
// convention of unnormalised transforms. Execution time follows a
// 5*N*log2(N) flop model at FFT-typical efficiency.
package cufft

import (
	"fmt"
	"math"
	"math/bits"

	"ipmgo/internal/cudart"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

// Transform directions, matching CUFFT_FORWARD / CUFFT_INVERSE.
const (
	Forward = -1
	Inverse = 1
)

// Plan is a CUFFT plan handle.
type Plan int

// FFT is the CUFFT call surface — the interposition seam for
// internal/ipmblas.
type FFT interface {
	Plan1d(nx, batch int) (Plan, error)
	Plan2d(nx, ny int) (Plan, error)
	ExecZ2Z(plan Plan, idata, odata cudart.DevPtr, direction int) error
	Destroy(plan Plan) error
}

type planInfo struct {
	nx, ny int // ny == 0 for 1D plans
	batch  int
}

// Lib is the concrete CUFFT implementation.
type Lib struct {
	api      cudart.API
	plans    map[Plan]planInfo
	next     Plan
	costOnly bool
}

// SetCostOnly disables the functional transform of subsequent executions
// (the timing model still runs), keeping large workload models cheap.
func (l *Lib) SetCostOnly(v bool) { l.costOnly = v }

var _ FFT = (*Lib)(nil)

// New creates a CUFFT library instance over the runtime.
func New(api cudart.API) *Lib {
	return &Lib{api: api, plans: make(map[Plan]planInfo), next: 1}
}

// Plan1d creates a 1D double-complex plan for batch transforms of length
// nx (cufftPlan1d with CUFFT_Z2Z).
func (l *Lib) Plan1d(nx, batch int) (Plan, error) {
	if nx <= 0 || batch <= 0 {
		return 0, fmt.Errorf("cufft: invalid plan1d nx=%d batch=%d", nx, batch)
	}
	p := l.next
	l.next++
	l.plans[p] = planInfo{nx: nx, batch: batch}
	return p, nil
}

// Plan2d creates a 2D double-complex plan of nx rows by ny columns
// (cufftPlan2d, row-major with ny the fastest-varying dimension, as in
// CUFFT).
func (l *Lib) Plan2d(nx, ny int) (Plan, error) {
	if nx <= 0 || ny <= 0 {
		return 0, fmt.Errorf("cufft: invalid plan2d %dx%d", nx, ny)
	}
	p := l.next
	l.next++
	l.plans[p] = planInfo{nx: nx, ny: ny, batch: 1}
	return p, nil
}

// Destroy releases a plan (cufftDestroy).
func (l *Lib) Destroy(plan Plan) error {
	if _, ok := l.plans[plan]; !ok {
		return fmt.Errorf("cufft: invalid plan %d", plan)
	}
	delete(l.plans, plan)
	return nil
}

// fftFlops is the standard 5 N log2 N operation count per transform.
func fftFlops(n int) float64 {
	if n < 2 {
		return float64(n)
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

// ExecZ2Z executes the plan on device data (cufftExecZ2Z). In-place
// operation (idata == odata) is supported, as in CUFFT.
func (l *Lib) ExecZ2Z(plan Plan, idata, odata cudart.DevPtr, direction int) error {
	info, ok := l.plans[plan]
	if !ok {
		return fmt.Errorf("cufft: invalid plan %d", plan)
	}
	if direction != Forward && direction != Inverse {
		return fmt.Errorf("cufft: invalid direction %d", direction)
	}
	var total int
	var flops float64
	if info.ny == 0 {
		total = info.nx * info.batch
		flops = float64(info.batch) * fftFlops(info.nx)
	} else {
		total = info.nx * info.ny
		flops = float64(info.ny)*fftFlops(info.nx) + float64(info.nx)*fftFlops(info.ny)
	}
	fn := &cudart.Func{
		Name: "cufft_z2z_kernel",
		FixedCost: perfmodel.KernelCost{
			FLOPs:      flops,
			MemBytes:   float64(32 * total), // read+write complex128 twice
			Efficiency: 0.35,
			Floor:      5e3,
		},
	}
	if !l.costOnly {
		fn.Body = func(ctx cudart.LaunchContext) {
			in, err1 := view(ctx.Dev, idata, total)
			out, err2 := view(ctx.Dev, odata, total)
			if err1 != nil || err2 != nil {
				return
			}
			buf := make([]complex128, total)
			in.CopyOut(buf)
			if info.ny == 0 {
				for b := 0; b < info.batch; b++ {
					seg := buf[b*info.nx : (b+1)*info.nx]
					fft(seg, direction)
				}
			} else {
				fft2d(buf, info.nx, info.ny, direction)
			}
			out.CopyIn(buf)
		}
	}
	grid := cudart.Dim3{X: (total + 255) / 256}
	if grid.X < 1 {
		grid.X = 1
	}
	return l.api.LaunchKernel(fn, grid, cudart.Dim3{X: 256}, 0)
}

func view(dev *gpusim.Device, p cudart.DevPtr, n int) (gpusim.C128View, error) {
	b, err := dev.Bytes(p, gpusim.C128Bytes(n))
	if err != nil {
		return gpusim.C128View{}, err
	}
	return gpusim.Complex128s(b), nil
}

// fft computes the unnormalised DFT of x in place. Power-of-two lengths
// use iterative radix-2 Cooley-Tukey; other lengths use the direct DFT.
func fft(x []complex128, direction int) {
	n := len(x)
	if n < 2 {
		return
	}
	sign := float64(direction) // CUFFT_FORWARD=-1 gives exp(-2πi k/N)
	if n&(n-1) == 0 {
		radix2(x, sign)
		return
	}
	dft(x, sign)
}

func radix2(x []complex128, sign float64) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		ang := sign * 2 * math.Pi / float64(size)
		wstep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
}

func dft(x []complex128, sign float64) {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = s
	}
	copy(x, out)
}

// fft2d transforms an nx-by-ny row-major array: all rows (length ny),
// then all columns (length nx).
func fft2d(x []complex128, nx, ny, direction int) {
	for r := 0; r < nx; r++ {
		fft(x[r*ny:(r+1)*ny], direction)
	}
	col := make([]complex128, nx)
	for c := 0; c < ny; c++ {
		for r := 0; r < nx; r++ {
			col[r] = x[r*ny+c]
		}
		fft(col, direction)
		for r := 0; r < nx; r++ {
			x[r*ny+c] = col[r]
		}
	}
}
