package ipmcl

import (
	"testing"
	"time"

	"ipmgo/internal/clsim"
	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/perfmodel"
)

func spec() perfmodel.GPUSpec {
	s := perfmodel.TeslaC2050()
	s.ContextInit = 0
	s.APICallCost = 100 * time.Nanosecond
	s.KernelDispatch = time.Microsecond
	s.PCIeLatency = 0
	s.PCIeH2DGBs = 1
	s.PCIeD2HGBs = 1
	return s
}

func run(t *testing.T, fn func(cl clsim.CL, m *Monitor)) *ipm.Monitor {
	t.Helper()
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, spec())
	var mon *ipm.Monitor
	e.Spawn("host", func(p *des.Proc) {
		mon = ipm.NewMonitor(0, "dirac1", "./ocl.ipm", p.Now, 0)
		mon.Start()
		w := Wrap(clsim.CreateContext(p, dev), mon)
		fn(w, w)
		w.Flush()
		mon.Stop()
	})
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	return mon
}

func stat(mon *ipm.Monitor, name string) ipm.Stats {
	var s ipm.Stats
	for _, e := range mon.Table().Entries() {
		if e.Sig.Name == name {
			s.Merge(e.Stats)
		}
	}
	return s
}

func TestMonitoredOpenCLPipeline(t *testing.T) {
	k := &clsim.Kernel{Name: "vecadd", Cost: perfmodel.KernelCost{Fixed: 20 * time.Millisecond}}
	mon := run(t, func(cl clsim.CL, m *Monitor) {
		q, err := cl.CreateCommandQueue()
		if err != nil {
			t.Fatal(err)
		}
		buf, err := cl.CreateBuffer(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.EnqueueWriteBuffer(q, buf, true, 0, make([]byte, 1<<20)); err != nil {
			t.Fatal(err)
		}
		if err := cl.SetKernelArg(k, 0, buf); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.EnqueueNDRangeKernel(q, k, []int{4096}, []int{64}); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.EnqueueReadBuffer(q, buf, true, 0, make([]byte, 1<<20)); err != nil {
			t.Fatal(err)
		}
		cl.Finish(q)
	})
	// Host-side entries present.
	for _, name := range []string{"clCreateCommandQueue", "clCreateBuffer", "clSetKernelArg",
		"clEnqueueNDRangeKernel", "clEnqueueWriteBuffer(H2D)", "clEnqueueReadBuffer(D2H)", "clFinish"} {
		if s := stat(mon, name); s.Count == 0 {
			t.Errorf("%s not recorded", name)
		}
	}
	// Kernel time recovered via profiling events: ~20ms on queue 1.
	exec := stat(mon, ExecQueueName(1))
	if exec.Count != 1 || exec.Total < 20*time.Millisecond || exec.Total > 21*time.Millisecond {
		t.Errorf("@CL_EXEC_QUEUE01 = %+v, want ~20ms", exec)
	}
	if s := stat(mon, ExecQueueName(1)+":vecadd"); s.Count != 1 {
		t.Errorf("per-kernel entry = %+v", s)
	}
	// Bytes attribute on the transfers.
	found := false
	for _, e := range mon.Table().Entries() {
		if e.Sig.Name == "clEnqueueWriteBuffer(H2D)" && e.Sig.Bytes == 1<<20 {
			found = true
		}
	}
	if !found {
		t.Error("transfer bytes attribute missing")
	}
}

func TestHarvestOnFinishWithoutReads(t *testing.T) {
	k := &clsim.Kernel{Name: "noio", Cost: perfmodel.KernelCost{Fixed: 5 * time.Millisecond}}
	mon := run(t, func(cl clsim.CL, m *Monitor) {
		q, _ := cl.CreateCommandQueue()
		cl.EnqueueNDRangeKernel(q, k, []int{16}, nil)
		cl.Finish(q)
	})
	if s := stat(mon, ExecQueueName(1)); s.Count != 1 {
		t.Errorf("kernel not harvested at Finish: %+v", s)
	}
}

func TestFlushHarvestsStragglers(t *testing.T) {
	k := &clsim.Kernel{Name: "straggler", Cost: perfmodel.KernelCost{Fixed: 2 * time.Millisecond}}
	mon := run(t, func(cl clsim.CL, m *Monitor) {
		q, _ := cl.CreateCommandQueue()
		ev, _ := cl.EnqueueNDRangeKernel(q, k, []int{16}, nil)
		// Wait without the monitor noticing completion through a blocking
		// read: WaitForEvents harvests too — so use it; the point here is
		// that nothing is lost by the end of the run.
		_ = ev
		cl.Finish(q)
	})
	if s := stat(mon, ExecQueueName(1)+":straggler"); s.Count != 1 {
		t.Errorf("straggler lost: %+v", s)
	}
}

func TestResultsUnchangedUnderMonitoring(t *testing.T) {
	scale := &clsim.Kernel{
		Name: "scale",
		Cost: perfmodel.KernelCost{Fixed: time.Millisecond},
		Body: func(dev *gpusim.Device, args map[int]any, global, local []int) {
			ptr := args[0].(gpusim.DevPtr)
			n := args[1].(int)
			b, err := dev.Bytes(ptr, gpusim.F64Bytes(n))
			if err != nil {
				return
			}
			v := gpusim.Float64s(b)
			for i := 0; i < n; i++ {
				v.Set(i, 3*v.At(i))
			}
		},
	}
	out := make([]byte, gpusim.F64Bytes(8))
	run(t, func(cl clsim.CL, m *Monitor) {
		q, _ := cl.CreateCommandQueue()
		buf, _ := cl.CreateBuffer(gpusim.F64Bytes(8))
		in := make([]byte, gpusim.F64Bytes(8))
		gpusim.Float64s(in).CopyIn([]float64{1, 2, 3, 4, 5, 6, 7, 8})
		cl.EnqueueWriteBuffer(q, buf, true, 0, in)
		cl.SetKernelArg(scale, 0, buf)
		cl.SetKernelArg(scale, 1, 8)
		cl.EnqueueNDRangeKernel(q, scale, []int{8}, nil)
		cl.EnqueueReadBuffer(q, buf, true, 0, out)
	})
	v := gpusim.Float64s(out)
	for i := 0; i < 8; i++ {
		if v.At(i) != 3*float64(i+1) {
			t.Fatalf("out[%d] = %v, want %v", i, v.At(i), 3*float64(i+1))
		}
	}
}
