// Package ipmcl applies IPM's interposition monitoring to the OpenCL
// runtime (internal/clsim), demonstrating the paper's claim that the
// technique carries over from CUDA unchanged: every clXxx entry point is
// timed into the performance hash table, transfers are tagged with their
// direction and byte count, and kernel execution time is recovered —
// here via OpenCL's native event profiling (clGetEventProfilingInfo)
// instead of a kernel timing table, since OpenCL events carry device
// timestamps already.
//
// Kernel times are recorded as @CL_EXEC_QUEUExx pseudo-entries, the
// OpenCL analogue of @CUDA_EXEC_STRMxx.
package ipmcl

import (
	"fmt"
	"time"

	"ipmgo/internal/clsim"
	"ipmgo/internal/ipm"
)

// ExecQueueName returns the pseudo-entry name for kernel execution in a
// queue.
func ExecQueueName(q clsim.Queue) string {
	return fmt.Sprintf("@CL_EXEC_QUEUE%02d", int(q))
}

// pendingKernel tracks a launched kernel whose profiling info has not
// been harvested yet.
type pendingKernel struct {
	ev     clsim.Event
	queue  clsim.Queue
	kernel string
}

// Monitor is the OpenCL interposition layer; it implements clsim.CL.
type Monitor struct {
	inner   clsim.CL
	mon     *ipm.Monitor
	pending []pendingKernel
}

var _ clsim.CL = (*Monitor)(nil)

// Wrap interposes IPM between the application and the OpenCL runtime.
func Wrap(inner clsim.CL, mon *ipm.Monitor) *Monitor {
	return &Monitor{inner: inner, mon: mon}
}

// IPM returns the underlying monitor.
func (m *Monitor) IPM() *ipm.Monitor { return m.mon }

func (m *Monitor) timed(name string, bytes int64, fn func()) {
	begin := m.mon.Now()
	fn()
	m.mon.Observe(name, bytes, m.mon.Now()-begin)
}

// harvest collects device-side kernel durations for completed launches
// via event profiling. Called from the synchronisation entry points —
// the natural OpenCL analogue of checking the KTT in D2H transfers.
func (m *Monitor) harvest() {
	remaining := m.pending[:0]
	for _, p := range m.pending {
		start, end, err := m.inner.GetEventProfilingInfo(p.ev)
		if err != nil {
			remaining = append(remaining, p)
			continue
		}
		d := end - start
		stat := ipm.Stats{Count: 1, Total: d, Min: d, Max: d}
		m.mon.ObserveN(ExecQueueName(p.queue), 0, stat)
		m.mon.ObserveN(ExecQueueName(p.queue)+":"+p.kernel, 0, stat)
	}
	m.pending = remaining
}

// Flush harvests any outstanding kernel timings (call after the last
// synchronisation).
func (m *Monitor) Flush() { m.harvest() }

// CreateCommandQueue wraps clCreateCommandQueue.
func (m *Monitor) CreateCommandQueue() (clsim.Queue, error) {
	var q clsim.Queue
	var err error
	m.timed("clCreateCommandQueue", 0, func() { q, err = m.inner.CreateCommandQueue() })
	return q, err
}

// ReleaseCommandQueue wraps clReleaseCommandQueue.
func (m *Monitor) ReleaseCommandQueue(q clsim.Queue) error {
	var err error
	m.timed("clReleaseCommandQueue", 0, func() { err = m.inner.ReleaseCommandQueue(q) })
	return err
}

// CreateBuffer wraps clCreateBuffer.
func (m *Monitor) CreateBuffer(size int64) (clsim.Mem, error) {
	var mem clsim.Mem
	var err error
	m.timed("clCreateBuffer", size, func() { mem, err = m.inner.CreateBuffer(size) })
	return mem, err
}

// ReleaseMemObject wraps clReleaseMemObject.
func (m *Monitor) ReleaseMemObject(mem clsim.Mem) error {
	var err error
	m.timed("clReleaseMemObject", 0, func() { err = m.inner.ReleaseMemObject(mem) })
	return err
}

// SetKernelArg wraps clSetKernelArg.
func (m *Monitor) SetKernelArg(k *clsim.Kernel, index int, value any) error {
	var err error
	m.timed("clSetKernelArg", 0, func() { err = m.inner.SetKernelArg(k, index, value) })
	return err
}

// EnqueueNDRangeKernel wraps clEnqueueNDRangeKernel and registers the
// returned event for kernel-time harvesting.
func (m *Monitor) EnqueueNDRangeKernel(q clsim.Queue, k *clsim.Kernel, global, local []int) (clsim.Event, error) {
	var ev clsim.Event
	var err error
	m.timed("clEnqueueNDRangeKernel", 0, func() { ev, err = m.inner.EnqueueNDRangeKernel(q, k, global, local) })
	if err == nil && k != nil {
		m.pending = append(m.pending, pendingKernel{ev: ev, queue: q, kernel: k.Name})
	}
	return ev, err
}

// EnqueueWriteBuffer wraps clEnqueueWriteBuffer, tagging the direction.
func (m *Monitor) EnqueueWriteBuffer(q clsim.Queue, mem clsim.Mem, blocking bool, offset int64, data []byte) (clsim.Event, error) {
	name := "clEnqueueWriteBuffer(async)"
	if blocking {
		name = "clEnqueueWriteBuffer(H2D)"
	}
	var ev clsim.Event
	var err error
	m.timed(name, int64(len(data)), func() { ev, err = m.inner.EnqueueWriteBuffer(q, mem, blocking, offset, data) })
	return ev, err
}

// EnqueueReadBuffer wraps clEnqueueReadBuffer; blocking reads harvest
// completed kernel timings, mirroring ipmcuda's D2H policy.
func (m *Monitor) EnqueueReadBuffer(q clsim.Queue, mem clsim.Mem, blocking bool, offset int64, out []byte) (clsim.Event, error) {
	name := "clEnqueueReadBuffer(async)"
	if blocking {
		name = "clEnqueueReadBuffer(D2H)"
	}
	var ev clsim.Event
	var err error
	m.timed(name, int64(len(out)), func() { ev, err = m.inner.EnqueueReadBuffer(q, mem, blocking, offset, out) })
	if blocking {
		m.harvest()
	}
	return ev, err
}

// Finish wraps clFinish and harvests kernel timings.
func (m *Monitor) Finish(q clsim.Queue) error {
	var err error
	m.timed("clFinish", 0, func() { err = m.inner.Finish(q) })
	m.harvest()
	return err
}

// WaitForEvents wraps clWaitForEvents and harvests kernel timings.
func (m *Monitor) WaitForEvents(evs ...clsim.Event) error {
	var err error
	m.timed("clWaitForEvents", 0, func() { err = m.inner.WaitForEvents(evs...) })
	m.harvest()
	return err
}

// GetEventProfilingInfo wraps clGetEventProfilingInfo.
func (m *Monitor) GetEventProfilingInfo(ev clsim.Event) (start, end time.Duration, err error) {
	m.timed("clGetEventProfilingInfo", 0, func() { start, end, err = m.inner.GetEventProfilingInfo(ev) })
	return start, end, err
}
