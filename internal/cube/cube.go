// Package cube converts IPM job profiles to the CUBE format used by the
// Scalasca tool set (paper Section II: ipm_parse can emit CUBE for
// interactive exploration, the view shown in Fig. 9).
//
// The writer emits the CUBE 3.0 XML structure: a metric tree (time and
// call counts), a program tree (one region/cnode per monitored function,
// grouped under their IPM region), a system tree (machine -> node ->
// process), and the severity matrix holding, for every (metric, cnode,
// process) triple, that rank's value — which is exactly the per-kernel,
// per-stream, per-rank breakdown the paper uses to spot imbalance.
package cube

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"ipmgo/internal/ipm"
)

// Doc is the CUBE 3.0 document.
type Doc struct {
	XMLName xml.Name `xml:"cube"`
	Version string   `xml:"version,attr"`
	Attrs   []Attr   `xml:"attr"`
	Metrics []Metric `xml:"metrics>metric"`
	Regions []Region `xml:"program>region"`
	Cnodes  []Cnode  `xml:"program>cnode"`
	System  System   `xml:"system"`
	Matrix  []Matrix `xml:"severity>matrix"`
}

// Attr is a document attribute.
type Attr struct {
	Key   string `xml:"key,attr"`
	Value string `xml:"value,attr"`
}

// Metric describes one measured quantity.
type Metric struct {
	ID       int    `xml:"id,attr"`
	DispName string `xml:"disp_name"`
	UniqName string `xml:"uniq_name"`
	DType    string `xml:"dtype"`
	UOM      string `xml:"uom"`
}

// Region is a source-level region (here: a monitored function).
type Region struct {
	ID   int    `xml:"id,attr"`
	Name string `xml:"name"`
	Mod  string `xml:"mod"`
}

// Cnode is a call-tree node referencing a region.
type Cnode struct {
	ID       int     `xml:"id,attr"`
	CalleeID int     `xml:"calleeId,attr"`
	Children []Cnode `xml:"cnode"`
}

// System is the machine/node/process tree.
type System struct {
	Machine Machine `xml:"machine"`
}

// Machine is the cluster.
type Machine struct {
	Name  string `xml:"name"`
	Nodes []Node `xml:"node"`
}

// Node is one cluster node hosting processes.
type Node struct {
	Name  string    `xml:"name"`
	Procs []Process `xml:"process"`
}

// Process is one MPI rank.
type Process struct {
	Rank int    `xml:"rank"`
	Name string `xml:"name"`
}

// Matrix holds one metric's severity rows.
type Matrix struct {
	MetricID int   `xml:"metricId,attr"`
	Rows     []Row `xml:"row"`
}

// Row holds one cnode's per-process values, newline separated as in CUBE.
type Row struct {
	CnodeID int    `xml:"cnodeId,attr"`
	Values  string `xml:",chardata"`
}

// FromProfile converts a job profile into a CUBE document. Functions are
// grouped per IPM region; each distinct function name becomes one region
// and one cnode.
func FromProfile(jp *ipm.JobProfile) *Doc {
	doc := &Doc{
		Version: "3.0",
		Attrs: []Attr{
			{Key: "CUBE_CT_AGGR", Value: "NONE"},
			{Key: "command", Value: jp.Command},
		},
		Metrics: []Metric{
			{ID: 0, DispName: "Time", UniqName: "time", DType: "FLOAT", UOM: "sec"},
			{ID: 1, DispName: "Visits", UniqName: "visits", DType: "INTEGER", UOM: "occ"},
		},
	}

	// Collect the distinct (region, name) pairs across all ranks, sorted
	// for a deterministic document.
	type key struct{ region, name string }
	seen := make(map[key]bool)
	var keys []key
	for _, r := range jp.Ranks {
		for _, e := range r.Entries {
			k := key{e.Sig.Region, e.Sig.Name}
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].region != keys[j].region {
			return keys[i].region < keys[j].region
		}
		return keys[i].name < keys[j].name
	})

	cnodeOf := make(map[key]int, len(keys))
	for i, k := range keys {
		mod := k.region
		if mod == "" {
			mod = "ipm_global"
		}
		doc.Regions = append(doc.Regions, Region{ID: i, Name: k.name, Mod: mod})
		doc.Cnodes = append(doc.Cnodes, Cnode{ID: i, CalleeID: i})
		cnodeOf[k] = i
	}

	// System tree: group ranks by host.
	hostRanks := make(map[string][]int)
	var hosts []string
	for _, r := range jp.Ranks {
		if _, ok := hostRanks[r.Host]; !ok {
			hosts = append(hosts, r.Host)
		}
		hostRanks[r.Host] = append(hostRanks[r.Host], r.Rank)
	}
	sort.Strings(hosts)
	doc.System.Machine.Name = "Dirac (simulated)"
	for _, h := range hosts {
		n := Node{Name: h}
		for _, rank := range hostRanks[h] {
			n.Procs = append(n.Procs, Process{Rank: rank, Name: fmt.Sprintf("rank %d", rank)})
		}
		doc.System.Machine.Nodes = append(doc.System.Machine.Nodes, n)
	}

	// Severity matrices: time (seconds) and visits, one value per rank in
	// rank order.
	nt := len(jp.Ranks)
	times := make([][]float64, len(keys))
	visits := make([][]int64, len(keys))
	for i := range keys {
		times[i] = make([]float64, nt)
		visits[i] = make([]int64, nt)
	}
	for ri, r := range jp.Ranks {
		for _, e := range r.Entries {
			i := cnodeOf[key{e.Sig.Region, e.Sig.Name}]
			times[i][ri] += e.Stats.Total.Seconds()
			visits[i][ri] += e.Stats.Count
		}
	}
	timeM := Matrix{MetricID: 0}
	visitM := Matrix{MetricID: 1}
	for i := range keys {
		var tb, vb strings.Builder
		for ri := 0; ri < nt; ri++ {
			if ri > 0 {
				tb.WriteByte('\n')
				vb.WriteByte('\n')
			}
			fmt.Fprintf(&tb, "%.9f", times[i][ri])
			fmt.Fprintf(&vb, "%d", visits[i][ri])
		}
		timeM.Rows = append(timeM.Rows, Row{CnodeID: i, Values: tb.String()})
		visitM.Rows = append(visitM.Rows, Row{CnodeID: i, Values: vb.String()})
	}
	doc.Matrix = []Matrix{timeM, visitM}
	return doc
}

// Write emits the profile as CUBE XML.
func Write(w io.Writer, jp *ipm.JobProfile) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(FromProfile(jp)); err != nil {
		return fmt.Errorf("cube: encode: %w", err)
	}
	if err := enc.Close(); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Parse reads a CUBE document (used by tests and tooling round trips).
func Parse(r io.Reader) (*Doc, error) {
	var doc Doc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("cube: parse: %w", err)
	}
	return &doc, nil
}
