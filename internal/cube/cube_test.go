package cube

import (
	"strings"
	"testing"
	"time"

	"ipmgo/internal/ipm"
)

func sampleProfile() *ipm.JobProfile {
	mk := func(rank int, host string, kernelTime time.Duration) ipm.RankProfile {
		return ipm.RankProfile{
			Rank:      rank,
			Host:      host,
			Wallclock: 10 * time.Second,
			Entries: []ipm.Entry{
				{Sig: ipm.Sig{Name: "@CUDA_EXEC_STRM00:dgemm_nn_e_kernel"},
					Stats: ipm.Stats{Count: 5, Total: kernelTime, Min: time.Millisecond, Max: time.Second}},
				{Sig: ipm.Sig{Name: "MPI_Allreduce", Bytes: 64},
					Stats: ipm.Stats{Count: 3, Total: 300 * time.Millisecond, Min: 100 * time.Millisecond, Max: 100 * time.Millisecond}},
			},
		}
	}
	return ipm.NewJobProfile("xhpl.cuda", 2, []ipm.RankProfile{
		mk(0, "dirac1", 2*time.Second),
		mk(1, "dirac2", 3*time.Second),
	})
}

func TestFromProfileStructure(t *testing.T) {
	doc := FromProfile(sampleProfile())
	if doc.Version != "3.0" {
		t.Errorf("version = %s", doc.Version)
	}
	if len(doc.Metrics) != 2 || doc.Metrics[0].UniqName != "time" || doc.Metrics[1].UniqName != "visits" {
		t.Errorf("metrics = %+v", doc.Metrics)
	}
	if len(doc.Regions) != 2 || len(doc.Cnodes) != 2 {
		t.Fatalf("regions/cnodes = %d/%d, want 2/2", len(doc.Regions), len(doc.Cnodes))
	}
	if len(doc.System.Machine.Nodes) != 2 {
		t.Errorf("system nodes = %d", len(doc.System.Machine.Nodes))
	}
	if len(doc.Matrix) != 2 {
		t.Fatalf("matrices = %d", len(doc.Matrix))
	}
	// Every cnode has a row with one value per rank.
	for _, m := range doc.Matrix {
		if len(m.Rows) != 2 {
			t.Fatalf("metric %d rows = %d", m.MetricID, len(m.Rows))
		}
		for _, row := range m.Rows {
			if n := len(strings.Split(row.Values, "\n")); n != 2 {
				t.Errorf("row %d has %d values, want 2", row.CnodeID, n)
			}
		}
	}
}

func TestSeverityValuesPerRank(t *testing.T) {
	doc := FromProfile(sampleProfile())
	// Find the kernel cnode (sorted: @CUDA... before MPI_...).
	if doc.Regions[0].Name != "@CUDA_EXEC_STRM00:dgemm_nn_e_kernel" {
		t.Fatalf("region order: %+v", doc.Regions)
	}
	row := doc.Matrix[0].Rows[0]
	vals := strings.Split(row.Values, "\n")
	if vals[0] != "2.000000000" || vals[1] != "3.000000000" {
		t.Errorf("per-rank kernel times = %v", vals)
	}
	visits := strings.Split(doc.Matrix[1].Rows[0].Values, "\n")
	if visits[0] != "5" || visits[1] != "5" {
		t.Errorf("per-rank visits = %v", visits)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "<cube version=\"3.0\">") {
		t.Error("missing cube root")
	}
	doc, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Regions) != 2 || len(doc.Matrix) != 2 {
		t.Errorf("round trip lost structure: %d regions, %d matrices", len(doc.Regions), len(doc.Matrix))
	}
	if _, err := Parse(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestDeterministicOutput(t *testing.T) {
	var a, b strings.Builder
	if err := Write(&a, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, sampleProfile()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("nondeterministic CUBE output")
	}
}
