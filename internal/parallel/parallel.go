// Package parallel provides the bounded worker pool that executes
// independent DES simulations concurrently — the harness-side counterpart
// of the monitoring fast path. Every trial of an ensemble experiment
// (fig8's HPL runs, fig10's process-count scan, table1's SDK suite) owns
// its entire simulated world: a private des.Engine, gpusim devices,
// mpisim world, iosim filesystem, and per-rank seeded RNGs, none of which
// escape the engine. Trials therefore share no mutable state and can run
// on separate OS threads; results are collected order-stably by index, so
// the same seeds produce byte-identical output at any worker count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the default parallelism: one worker per CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// RunAll invokes fn(0) .. fn(n-1), each exactly once, on at most workers
// concurrent goroutines and waits for all of them. workers <= 0 selects
// DefaultWorkers(). Results are the caller's to collect by index (writes
// to distinct indices of a pre-sized slice need no locking).
//
// Error propagation is deterministic: RunAll returns the error of the
// lowest-indexed failing call, regardless of completion order. After any
// failure no new calls are dispatched, but calls already in flight run to
// completion before RunAll returns.
func RunAll(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64 // next index to dispatch
		failed  atomic.Bool  // stop dispatching after any error
		mu      sync.Mutex
		errIdx  = n // lowest failing index seen
		firstEr error
		wg      sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if i < errIdx {
						errIdx, firstEr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// Map runs fn over 0..n-1 with RunAll's pool semantics and returns the
// results in index order. On error the partial results are discarded and
// the lowest-indexed error is returned.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := RunAll(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
