package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAllInvokesEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		var calls [n]atomic.Int32
		if err := RunAll(n, workers, func(i int) error {
			calls[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range calls {
			if c := calls[i].Load(); c != 1 {
				t.Fatalf("workers=%d: fn(%d) called %d times", workers, i, c)
			}
		}
	}
}

func TestRunAllEmptyAndOversizedPool(t *testing.T) {
	if err := RunAll(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int32
	if err := RunAll(2, 64, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 2 {
		t.Fatalf("ran = %d, want 2", ran.Load())
	}
}

func TestRunAllReturnsLowestIndexedError(t *testing.T) {
	// Indices 3 and 7 fail; regardless of scheduling, the reported error
	// must be index 3's. Index 7 finishes first to tempt a
	// first-to-complete implementation.
	for _, workers := range []int{2, 4, 8} {
		err := RunAll(10, workers, func(i int) error {
			switch i {
			case 3:
				time.Sleep(10 * time.Millisecond)
				return fmt.Errorf("fail-%d", i)
			case 7:
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Fatalf("workers=%d: err = %v, want fail-3", workers, err)
		}
	}
}

func TestMapCollectsInIndexOrder(t *testing.T) {
	out, err := Map(50, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapDiscardsPartialResultsOnError(t *testing.T) {
	out, err := Map(10, 4, func(i int) (int, error) {
		if i == 0 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("out = %v, err = %v", out, err)
	}
}

// TestRunAllSharedCounterRace exists for the -race build: concurrent
// workers bumping an atomic and writing distinct slice indices must not
// trip the detector.
func TestRunAllSharedCounterRace(t *testing.T) {
	const n = 256
	out := make([]int, n)
	var sum atomic.Int64
	if err := RunAll(n, 8, func(i int) error {
		out[i] = i
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != n*(n-1)/2 {
		t.Fatalf("sum = %d", sum.Load())
	}
}
