// Package cmdqueue models the driver's per-context command submission
// queue — the layer between the CUDA runtime API (internal/cudart) and
// the device (internal/gpusim) that the paper's API-level timing cannot
// see. Kernel launches, memory copies, memsets and event records become
// commands buffered in a per-context queue; the "driver" submits a
// batch to the device when the queue reaches a depth threshold, when a
// virtual-time flush timer expires, or when the host hits a
// synchronisation point.
//
// The observable consequence is submit stall: the virtual time a
// command spends between its API call (enqueue) and its hand-off to the
// device (flush). Each flush reports the per-command stall to an
// OnSubmit hook (the cluster wires it into the IPM hash table), records
// a submit span plus a queue-depth counter track when telemetry is
// attached, and bumps the per-queue Prometheus cells.
//
// Determinism: a queue is owned by one DES engine and mutated only from
// engine context (host process calls and the flush-timer event), so for
// a fixed configuration every flush decision is a pure function of
// virtual time and call order — simulations stay byte-identical at any
// host parallelism. Changing FlushDepth/FlushInterval legitimately
// changes the schedule (batching is a physical effect), but each
// setting is itself deterministic.
//
// The enqueue hot path appends a value-type Command to a reusable
// slice: zero heap allocations per operation in steady state (pinned by
// TestEnqueueAllocs and BenchmarkQueueSubmit).
package cmdqueue

import (
	"errors"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
	"ipmgo/internal/telemetry"
)

// ErrDeviceLost is returned (and then sticky) once the queue's device is
// lost: queued commands are dropped rather than submitted, so
// synchronisation points fail fast instead of hanging on completions
// that will never fire.
var ErrDeviceLost = errors.New("cmdqueue: device lost, queued commands dropped")

// DefaultFlushDepth and DefaultFlushInterval are the batching defaults:
// small enough that an unsuspecting workload sees microsecond-scale
// stalls, large enough that launch-heavy loops batch visibly.
const (
	DefaultFlushDepth    = 8
	DefaultFlushInterval = 20 * time.Microsecond
)

// Options configures one submission queue.
type Options struct {
	// FlushDepth submits the batch when this many commands are queued
	// (default DefaultFlushDepth; 1 disables batching).
	FlushDepth int
	// FlushInterval submits whatever is queued this long (virtual time)
	// after the first command entered an empty queue (default
	// DefaultFlushInterval; <0 disables the timer).
	FlushInterval time.Duration
	// Name labels the queue's telemetry track and metric series, by
	// convention "ctx<rank>/q0".
	Name string
	// Telemetry, when non-nil, receives one ClassQueue submit span per
	// flush and a queue-depth counter point per enqueue/flush.
	Telemetry *telemetry.Recorder
	// OnSubmit, when non-nil, is invoked at flush time for every
	// submitted command with its call-site name, operand bytes, and
	// enqueue→flush stall. The cluster adapts this onto
	// ipm.Monitor.ObserveNRef so stall lands on the same hash-table row
	// as the call's host timing.
	OnSubmit func(site string, bytes int64, stall time.Duration)
	// Depth and Flushes are optional per-queue metric cells
	// (ipm_queue_depth gauge, ipm_queue_flushes_total counter).
	Depth   *telemetry.VecCell
	Flushes *telemetry.VecCell
	// Stall, when non-nil, observes each submitted command's stall in
	// nanoseconds.
	Stall *telemetry.Histogram
}

func (o Options) withDefaults() Options {
	if o.FlushDepth == 0 {
		o.FlushDepth = DefaultFlushDepth
	}
	if o.FlushDepth < 1 {
		o.FlushDepth = 1
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = DefaultFlushInterval
	}
	if o.Name == "" {
		o.Name = "ctx0/q0"
	}
	return o
}

// cmdKind discriminates the Command union.
type cmdKind uint8

const (
	cmdKernel cmdKind = iota
	cmdCopy
	cmdMemset
	cmdEvent
)

// Command is one buffered device operation. Commands are stored by value
// in the queue's reusable slice; the union fields overlap by kind.
type Command struct {
	kind   cmdKind
	site   string        // API call-site name for stall attribution
	enq    time.Duration // virtual enqueue time
	bytes  int64
	stream *gpusim.Stream

	// kernel
	name        string
	cost        perfmodel.KernelCost
	grid, block [3]int

	// copy
	dir    perfmodel.TransferDir
	pinned bool

	// event record
	ev *gpusim.DevEvent

	payload func()
}

// Queue is one per-context submission queue. Not safe for concurrent
// use; like the device it fronts, it is driven from DES context only.
type Queue struct {
	eng  *des.Engine
	dev  *gpusim.Device
	opts Options

	cmds  []Command
	timer des.Event // pending flush timer, zero when none
	armed bool

	err error // sticky ErrDeviceLost

	flushes  uint64
	submits  uint64
	maxDepth int
}

// New creates a queue submitting to dev. The engine is taken from the
// device; opts zero values select the defaults.
func New(dev *gpusim.Device, opts Options) *Queue {
	o := opts.withDefaults()
	return &Queue{
		eng:  dev.Engine(),
		dev:  dev,
		opts: o,
		cmds: make([]Command, 0, o.FlushDepth+4),
	}
}

// Name returns the queue label.
func (q *Queue) Name() string { return q.opts.Name }

// Depth returns the number of commands currently buffered.
func (q *Queue) Depth() int { return len(q.cmds) }

// MaxDepth returns the deepest the queue has been.
func (q *Queue) MaxDepth() int { return q.maxDepth }

// Flushes returns how many non-empty batches have been submitted.
func (q *Queue) Flushes() uint64 { return q.flushes }

// Submits returns how many commands have been submitted to the device.
func (q *Queue) Submits() uint64 { return q.submits }

// Err returns the sticky queue error (ErrDeviceLost after the device is
// lost), or nil.
func (q *Queue) Err() error { return q.err }

// push buffers one command and applies the flush heuristics. The caller
// has filled c except for the enqueue timestamp.
func (q *Queue) push(c Command) error {
	if q.err != nil {
		return q.err
	}
	c.enq = q.eng.Now()
	wasEmpty := len(q.cmds) == 0
	q.cmds = append(q.cmds, c)
	n := len(q.cmds)
	if n > q.maxDepth {
		q.maxDepth = n
	}
	if cell := q.opts.Depth; cell != nil {
		cell.Set(float64(n))
	}
	if rec := q.opts.Telemetry; rec != nil {
		rec.RecordCounter(telemetry.CounterPoint{
			Track: q.opts.Name, Name: "depth", Time: c.enq, Value: float64(n),
		})
	}
	if n >= q.opts.FlushDepth {
		return q.Flush()
	}
	if wasEmpty && q.opts.FlushInterval > 0 {
		q.timer = q.eng.ScheduleRunner(c.enq+q.opts.FlushInterval, q)
		q.armed = true
	}
	return nil
}

// Run fires the flush timer; it implements des.Runner so arming the
// timer allocates nothing per enqueue.
func (q *Queue) Run() {
	q.armed = false
	_ = q.Flush()
}

// Flush submits every buffered command to the device in enqueue order.
// On a lost device the batch is dropped and ErrDeviceLost becomes the
// sticky queue error — synchronisation points drain as errors instead
// of waiting on completions that will never fire.
func (q *Queue) Flush() error {
	if q.armed {
		q.timer.Cancel()
		q.armed = false
	}
	if q.err != nil {
		return q.err
	}
	if len(q.cmds) == 0 {
		return nil
	}
	now := q.eng.Now()
	if q.dev.Lost() {
		q.err = ErrDeviceLost
		q.cmds = q.cmds[:0]
		if cell := q.opts.Depth; cell != nil {
			cell.Set(0)
		}
		return q.err
	}
	batch := q.cmds
	oldest := batch[0].enq
	for i := range batch {
		c := &batch[i]
		switch c.kind {
		case cmdKernel:
			q.dev.LaunchKernel(c.stream, c.name, c.cost, c.grid, c.block, c.payload)
		case cmdCopy:
			q.dev.EnqueueCopy(c.stream, c.dir, c.bytes, c.pinned, c.payload)
		case cmdMemset:
			q.dev.EnqueueMemset(c.stream, c.bytes, c.payload)
		case cmdEvent:
			c.ev.Record(c.stream)
		}
		stall := now - c.enq
		if fn := q.opts.OnSubmit; fn != nil {
			fn(c.site, c.bytes, stall)
		}
		if h := q.opts.Stall; h != nil {
			h.Observe(float64(stall.Nanoseconds()))
		}
		// Clear pointer fields so the reused slice does not retain
		// payloads/streams past the batch.
		c.payload = nil
		c.stream = nil
		c.ev = nil
	}
	n := len(batch)
	q.cmds = q.cmds[:0]
	q.flushes++
	q.submits += uint64(n)
	if cell := q.opts.Depth; cell != nil {
		cell.Set(0)
	}
	if cell := q.opts.Flushes; cell != nil {
		cell.Add(1)
	}
	if rec := q.opts.Telemetry; rec != nil {
		rec.Record(telemetry.Span{
			Track: q.opts.Name, Name: "submit", Class: telemetry.ClassQueue,
			Start: oldest, End: now, Bytes: int64(n),
		})
		rec.RecordCounter(telemetry.CounterPoint{
			Track: q.opts.Name, Name: "depth", Time: now, Value: 0,
		})
	}
	return nil
}

// EnqueueKernel buffers a kernel launch. site is the API call-site name
// the stall is attributed to ("cudaLaunch").
func (q *Queue) EnqueueKernel(s *gpusim.Stream, site, name string, cost perfmodel.KernelCost, grid, block [3]int, body func()) error {
	return q.push(Command{
		kind: cmdKernel, site: site, stream: s,
		name: name, cost: cost, grid: grid, block: block, payload: body,
	})
}

// EnqueueCopy buffers a memory copy of n bytes.
func (q *Queue) EnqueueCopy(s *gpusim.Stream, site string, dir perfmodel.TransferDir, n int64, pinned bool, payload func()) error {
	return q.push(Command{
		kind: cmdCopy, site: site, stream: s,
		dir: dir, bytes: n, pinned: pinned, payload: payload,
	})
}

// EnqueueMemset buffers a device memset of n bytes.
func (q *Queue) EnqueueMemset(s *gpusim.Stream, site string, n int64, payload func()) error {
	return q.push(Command{kind: cmdMemset, site: site, stream: s, bytes: n, payload: payload})
}

// EnqueueEventRecord buffers an event record. The event reports
// unrecorded (Query false, Done nil) until the batch is flushed — the
// submission latency a host-side poller actually observes.
func (q *Queue) EnqueueEventRecord(s *gpusim.Stream, site string, ev *gpusim.DevEvent) error {
	return q.push(Command{kind: cmdEvent, site: site, stream: s, ev: ev})
}
