package cmdqueue

import (
	"errors"
	"testing"
	"time"

	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
	"ipmgo/internal/telemetry"
)

// testSpec mirrors gpusim's test spec: zero fixed costs and round
// bandwidths so timing assertions stay exact.
func testSpec() perfmodel.GPUSpec {
	s := perfmodel.TeslaC2050()
	s.KernelDispatch = 0
	s.EventRecordCost = 0
	s.PCIeLatency = 0
	s.PCIeH2DGBs = 1
	s.PCIeD2HGBs = 1
	s.ContextInit = 0
	return s
}

func fixed(d time.Duration) perfmodel.KernelCost { return perfmodel.KernelCost{Fixed: d} }

// submitRec captures one OnSubmit callback.
type submitRec struct {
	site  string
	bytes int64
	stall time.Duration
}

func TestFlushByDepth(t *testing.T) {
	e := des.NewEngine()
	d := gpusim.NewDevice(e, testSpec())
	var subs []submitRec
	q := New(d, Options{
		FlushDepth:    3,
		FlushInterval: -1, // timer off: depth is the only trigger
		OnSubmit: func(site string, bytes int64, stall time.Duration) {
			subs = append(subs, submitRec{site, bytes, stall})
		},
	})
	e.Spawn("host", func(p *des.Proc) {
		gs := d.DefaultStream()
		if err := q.EnqueueKernel(gs, "cudaLaunch", "k0", fixed(time.Millisecond), [3]int{}, [3]int{}, nil); err != nil {
			t.Error(err)
		}
		p.Sleep(2 * time.Millisecond)
		if err := q.EnqueueKernel(gs, "cudaLaunch", "k1", fixed(time.Millisecond), [3]int{}, [3]int{}, nil); err != nil {
			t.Error(err)
		}
		if got := q.Depth(); got != 2 {
			t.Errorf("depth before trigger = %d, want 2", got)
		}
		if got := q.Flushes(); got != 0 {
			t.Errorf("flushed before reaching depth: %d", got)
		}
		p.Sleep(3 * time.Millisecond)
		// Third command reaches FlushDepth and submits the batch.
		if err := q.EnqueueKernel(gs, "cudaLaunch", "k2", fixed(time.Millisecond), [3]int{}, [3]int{}, nil); err != nil {
			t.Error(err)
		}
		if got := q.Depth(); got != 0 {
			t.Errorf("depth after flush = %d, want 0", got)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Flushes() != 1 || q.Submits() != 3 {
		t.Fatalf("flushes=%d submits=%d, want 1/3", q.Flushes(), q.Submits())
	}
	// Flush happened at t=5ms: stalls are 5, 3, 0 ms in enqueue order.
	want := []time.Duration{5 * time.Millisecond, 3 * time.Millisecond, 0}
	if len(subs) != len(want) {
		t.Fatalf("got %d submit callbacks, want %d", len(subs), len(want))
	}
	for i, s := range subs {
		if s.site != "cudaLaunch" || s.stall != want[i] {
			t.Errorf("submit %d = {%q %v}, want {cudaLaunch %v}", i, s.site, s.stall, want[i])
		}
	}
	if q.MaxDepth() != 3 {
		t.Errorf("max depth = %d, want 3", q.MaxDepth())
	}
}

func TestFlushByTimer(t *testing.T) {
	e := des.NewEngine()
	d := gpusim.NewDevice(e, testSpec())
	var subs []submitRec
	q := New(d, Options{
		FlushDepth:    100, // never reached: the timer must fire
		FlushInterval: 5 * time.Millisecond,
		OnSubmit: func(site string, bytes int64, stall time.Duration) {
			subs = append(subs, submitRec{site, bytes, stall})
		},
	})
	var opEnd time.Duration
	e.Spawn("host", func(p *des.Proc) {
		gs := d.DefaultStream()
		if err := q.EnqueueKernel(gs, "cudaLaunch", "k", fixed(time.Millisecond), [3]int{}, [3]int{}, nil); err != nil {
			t.Error(err)
		}
		p.Sleep(20 * time.Millisecond)
		op := d.LastOp()
		if op == nil {
			t.Error("no device op after timer window")
			return
		}
		p.Wait(op.Done())
		opEnd = op.End
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Flushes() != 1 {
		t.Fatalf("flushes = %d, want 1 (timer)", q.Flushes())
	}
	if len(subs) != 1 || subs[0].stall != 5*time.Millisecond {
		t.Fatalf("submit stall = %+v, want one 5ms entry", subs)
	}
	// Kernel hit the device at 5ms and ran 1ms.
	if opEnd != 6*time.Millisecond {
		t.Errorf("kernel end = %v, want 6ms", opEnd)
	}
}

func TestExplicitFlushCancelsTimer(t *testing.T) {
	e := des.NewEngine()
	d := gpusim.NewDevice(e, testSpec())
	q := New(d, Options{FlushDepth: 100, FlushInterval: 5 * time.Millisecond})
	e.Spawn("host", func(p *des.Proc) {
		gs := d.DefaultStream()
		if err := q.EnqueueMemset(gs, "cudaMemset", 64, nil); err != nil {
			t.Error(err)
		}
		if err := q.Flush(); err != nil { // sync point before the timer
			t.Error(err)
		}
		p.Sleep(20 * time.Millisecond) // past the (cancelled) timer
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if q.Flushes() != 1 {
		t.Errorf("flushes = %d, want exactly 1 (timer cancelled)", q.Flushes())
	}
}

func TestFIFOOrderAndEventRecord(t *testing.T) {
	e := des.NewEngine()
	d := gpusim.NewDevice(e, testSpec())
	q := New(d, Options{FlushDepth: 100, FlushInterval: -1})
	ev := d.NewEvent()
	var elapsed time.Duration
	e.Spawn("host", func(p *des.Proc) {
		gs := d.DefaultStream()
		if err := q.EnqueueKernel(gs, "cudaLaunch", "k", fixed(3*time.Millisecond), [3]int{}, [3]int{}, nil); err != nil {
			t.Error(err)
		}
		if err := q.EnqueueEventRecord(gs, "cudaEventRecord", ev); err != nil {
			t.Error(err)
		}
		// Unflushed: the record has not reached the device.
		if ev.Query() {
			t.Error("event reports recorded before flush")
		}
		if err := q.Flush(); err != nil {
			t.Error(err)
		}
		p.Wait(ev.Done())
		elapsed = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// FIFO: the event recorded after the kernel fires at the kernel's end.
	if elapsed != 3*time.Millisecond {
		t.Errorf("event fired at %v, want 3ms", elapsed)
	}
}

func TestDeviceLostDropsBatch(t *testing.T) {
	e := des.NewEngine()
	d := gpusim.NewDevice(e, testSpec())
	var subs int
	q := New(d, Options{
		FlushDepth:    100,
		FlushInterval: -1,
		OnSubmit:      func(string, int64, time.Duration) { subs++ },
	})
	e.Spawn("host", func(p *des.Proc) {
		gs := d.DefaultStream()
		for i := 0; i < 3; i++ {
			if err := q.EnqueueMemset(gs, "cudaMemset", 64, nil); err != nil {
				t.Error(err)
			}
		}
		d.MarkLost()
		if err := q.Flush(); !errors.Is(err, ErrDeviceLost) {
			t.Errorf("flush on lost device = %v, want ErrDeviceLost", err)
		}
		// Sticky: later enqueues and flushes fail fast, nothing hangs.
		if err := q.EnqueueMemset(gs, "cudaMemset", 64, nil); !errors.Is(err, ErrDeviceLost) {
			t.Errorf("enqueue after loss = %v, want ErrDeviceLost", err)
		}
		if err := q.Flush(); !errors.Is(err, ErrDeviceLost) {
			t.Errorf("flush after loss = %v, want ErrDeviceLost", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if subs != 0 {
		t.Errorf("%d commands submitted from a lost device's queue, want 0", subs)
	}
	if q.Depth() != 0 {
		t.Errorf("depth = %d after drop, want 0", q.Depth())
	}
	if d.LastOp() != nil {
		t.Error("device received an op from the dropped batch")
	}
}

func TestQueueTelemetry(t *testing.T) {
	e := des.NewEngine()
	d := gpusim.NewDevice(e, testSpec())
	rec := telemetry.NewRecorder(128)
	q := New(d, Options{FlushDepth: 2, FlushInterval: -1, Name: "ctx0/q0", Telemetry: rec})
	e.Spawn("host", func(p *des.Proc) {
		gs := d.DefaultStream()
		q.EnqueueMemset(gs, "cudaMemset", 64, nil)
		p.Sleep(time.Millisecond)
		q.EnqueueMemset(gs, "cudaMemset", 64, nil) // depth 2: flush
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var submit *telemetry.Span
	for _, s := range rec.Snapshot() {
		if s.Class == telemetry.ClassQueue && s.Name == "submit" {
			s := s
			submit = &s
		}
	}
	if submit == nil {
		t.Fatal("no ClassQueue submit span recorded")
	}
	if submit.Track != "ctx0/q0" || submit.Start != 0 || submit.End != time.Millisecond || submit.Bytes != 2 {
		t.Errorf("submit span = %+v, want track ctx0/q0 spanning 0..1ms with 2 commands", submit)
	}
	pts := rec.CounterSnapshot()
	// depth=1 at enqueue, depth=2 at second enqueue, depth=0 after flush.
	want := []float64{1, 2, 0}
	if len(pts) != len(want) {
		t.Fatalf("got %d counter points, want %d: %+v", len(pts), len(want), pts)
	}
	for i, p := range pts {
		if p.Track != "ctx0/q0" || p.Name != "depth" || p.Value != want[i] {
			t.Errorf("counter %d = %+v, want depth=%v on ctx0/q0", i, p, want[i])
		}
	}
}

// TestEnqueueAllocs pins the enqueue hot path at zero heap allocations
// per command once the command slice has grown to its working size.
func TestEnqueueAllocs(t *testing.T) {
	e := des.NewEngine()
	d := gpusim.NewDevice(e, testSpec())
	q := New(d, Options{FlushDepth: 1 << 20, FlushInterval: -1})
	gs := d.DefaultStream()
	for i := 0; i < 2048; i++ {
		if err := q.EnqueueMemset(gs, "cudaMemset", 64, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The drained slice keeps its capacity: enqueues below never grow it.
	if allocs := testing.AllocsPerRun(500, func() {
		if err := q.EnqueueMemset(gs, "cudaMemset", 64, nil); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("enqueue allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkQueueSubmit(b *testing.B) {
	e := des.NewEngine()
	d := gpusim.NewDevice(e, testSpec())
	q := New(d, Options{FlushDepth: 64, FlushInterval: -1})
	gs := d.DefaultStream()
	run := func() {
		for j := 0; j < 1024; j++ {
			if err := q.EnqueueMemset(gs, "cudaMemset", 4096, nil); err != nil {
				b.Fatal(err)
			}
		}
		if err := q.Flush(); err != nil {
			b.Fatal(err)
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm pools and the command slice
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}
