// Package devmodel is the device-backend registry: everything gpusim
// used to hard-code about one GPU — SM count, concurrent-kernel limit,
// copy-engine count, clocks, context-creation cost — captured as a
// named Spec, plus a power model that turns device busy time into
// attributable energy (idle vs active watts per engine class,
// per-kernel energy = power × device busy time).
//
// Backends register under a short flag-friendly name ("c2050", "a100",
// "cl-generic"); `ipmrun -device` and the experiments driver look them
// up here. The registry makes adding a device a data entry, not a
// simulator rewrite.
package devmodel

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"ipmgo/internal/perfmodel"
)

// PowerSpec models device power draw per engine class, split idle vs
// active in the style of per-process energy attributors: IdleWatts
// draws for the device's whole lifetime; each active class draws its
// rate only while the corresponding engine is busy, so busy time is
// what gets charged back to call sites, ranks and jobs.
type PowerSpec struct {
	// IdleWatts is the floor draw of a powered, idle device.
	IdleWatts float64
	// KernelWatts is the additional draw while SMs execute a kernel.
	KernelWatts float64
	// CopyWatts is the additional draw of a busy DMA engine.
	CopyWatts float64
	// MemsetWatts is the additional draw of the memory system during
	// device-side fills.
	MemsetWatts float64
}

// Zero reports whether the power model is absent, which disables
// energy attribution entirely.
func (p PowerSpec) Zero() bool {
	return p.IdleWatts == 0 && p.KernelWatts == 0 && p.CopyWatts == 0 && p.MemsetWatts == 0
}

// ActiveEnergyNJ converts per-class device busy time into nanojoules.
func (p PowerSpec) ActiveEnergyNJ(kernel, copy, memset time.Duration) int64 {
	return EnergyNJ(p.KernelWatts, kernel) +
		EnergyNJ(p.CopyWatts, copy) +
		EnergyNJ(p.MemsetWatts, memset)
}

// Spec describes one device backend: the perfmodel GPU parameters plus
// what perfmodel does not capture — DMA engine count and the power
// model.
type Spec struct {
	// Name is the registry key ("c2050"); empty for ad-hoc specs built
	// straight from a perfmodel.GPUSpec.
	Name string
	// GPU is the simulator's performance model (SM count, clocks,
	// concurrent-kernel limit, context-creation cost, ...). GPU.Name is
	// the display string reports carry ("Tesla C2050").
	GPU perfmodel.GPUSpec
	// CopyEngines is the number of DMA engines per transfer direction;
	// values < 1 mean 1, the C2050 arrangement.
	CopyEngines int
	// Power is the device power model; the zero value disables energy
	// attribution.
	Power PowerSpec
}

// EffectiveCopyEngines normalises CopyEngines to at least one engine
// per direction.
func (s Spec) EffectiveCopyEngines() int {
	if s.CopyEngines < 1 {
		return 1
	}
	return s.CopyEngines
}

// Defined reports whether the spec names a device. Zero-value Specs
// (ad-hoc Configs built in tests) skip the devmodel path entirely.
func (s Spec) Defined() bool { return s.Name != "" || s.GPU.Name != "" }

// Custom wraps a bare perfmodel spec as an unregistered backend with
// one copy engine per direction and no power model — exactly the
// pre-registry gpusim behaviour.
func Custom(g perfmodel.GPUSpec) Spec { return Spec{GPU: g, CopyEngines: 1} }

// EnergyNJ converts a power draw sustained for d into integer
// nanojoules (1 W for 1 ns is 1 nJ). The float→integer rounding
// happens exactly once, here, so every downstream aggregation is an
// integer sum and therefore independent of ingest order and ensemble
// parallelism.
func EnergyNJ(watts float64, d time.Duration) int64 {
	if watts <= 0 || d <= 0 {
		return 0
	}
	return int64(math.Round(watts * float64(d)))
}

// Joules renders an integer nanojoule total as joules for reports.
func Joules(nj int64) float64 { return float64(nj) / 1e9 }

var (
	regMu    sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds a backend under name; the stored spec's Name field is
// set to name. Re-registering a name panics: backends are wired at
// init time, and a silent overwrite would change simulation results.
func Register(name string, spec Spec) {
	if name == "" {
		panic("devmodel: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("devmodel: backend %q already registered", name))
	}
	spec.Name = name
	registry[name] = spec
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered backend names, sorted, so -list-devices
// and fail-fast error messages are deterministic.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// List returns the registered specs in Name order.
func List() []Spec {
	names := Names()
	specs := make([]Spec, 0, len(names))
	for _, n := range names {
		s, _ := Lookup(n)
		specs = append(specs, s)
	}
	return specs
}
