package devmodel

import (
	"testing"
	"time"

	"ipmgo/internal/perfmodel"
)

func TestBuiltinBackends(t *testing.T) {
	want := []string{"a100", "c2050", "cl-generic"}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", got, want)
	}
	for _, n := range want {
		s, ok := Lookup(n)
		if !ok {
			t.Fatalf("Lookup(%q) missing", n)
		}
		if s.Name != n {
			t.Errorf("Lookup(%q).Name = %q", n, s.Name)
		}
		if s.GPU.Name == "" || s.GPU.MultiProcessors == 0 {
			t.Errorf("backend %q has incomplete GPU spec: %+v", n, s.GPU)
		}
		if s.Power.Zero() {
			t.Errorf("backend %q has no power model", n)
		}
	}
}

func TestC2050MatchesSeedSpec(t *testing.T) {
	s, ok := Lookup("c2050")
	if !ok {
		t.Fatal("c2050 not registered")
	}
	if s.GPU != perfmodel.TeslaC2050() {
		t.Errorf("c2050 GPU spec diverged from perfmodel.TeslaC2050():\n got %+v\nwant %+v",
			s.GPU, perfmodel.TeslaC2050())
	}
	if s.EffectiveCopyEngines() != 1 {
		t.Errorf("c2050 copy engines = %d, want 1", s.EffectiveCopyEngines())
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not strictly sorted: %v", names)
		}
	}
	specs := List()
	if len(specs) != len(names) {
		t.Fatalf("List() returned %d specs for %d names", len(specs), len(names))
	}
	for i, s := range specs {
		if s.Name != names[i] {
			t.Errorf("List()[%d].Name = %q, want %q", i, s.Name, names[i])
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("c2050", Spec{})
}

func TestCustom(t *testing.T) {
	c := Custom(perfmodel.TeslaC2050())
	if c.Name != "" {
		t.Errorf("Custom spec has registry name %q", c.Name)
	}
	if !c.Defined() {
		t.Error("Custom spec with a GPU name should be Defined")
	}
	if c.EffectiveCopyEngines() != 1 {
		t.Errorf("Custom copy engines = %d, want 1", c.EffectiveCopyEngines())
	}
	if !c.Power.Zero() {
		t.Errorf("Custom power = %+v, want zero", c.Power)
	}
	if (Spec{}).Defined() {
		t.Error("zero Spec should not be Defined")
	}
}

func TestEnergyNJ(t *testing.T) {
	cases := []struct {
		watts float64
		d     time.Duration
		want  int64
	}{
		{0, time.Second, 0},
		{-5, time.Second, 0},
		{100, 0, 0},
		{100, -time.Second, 0},
		{1, time.Nanosecond, 1},          // 1 W x 1 ns = 1 nJ
		{190, time.Millisecond, 190e6},   // kernel-scale
		{70, 250 * time.Microsecond, 17500000},
		{0.5, time.Nanosecond, 1},        // rounds, not truncates
	}
	for _, c := range cases {
		if got := EnergyNJ(c.watts, c.d); got != c.want {
			t.Errorf("EnergyNJ(%v, %v) = %d, want %d", c.watts, c.d, got, c.want)
		}
	}
}

func TestActiveEnergyNJ(t *testing.T) {
	p := PowerSpec{KernelWatts: 100, CopyWatts: 50, MemsetWatts: 25}
	got := p.ActiveEnergyNJ(time.Millisecond, time.Millisecond, time.Millisecond)
	want := int64(100e6 + 50e6 + 25e6)
	if got != want {
		t.Errorf("ActiveEnergyNJ = %d, want %d", got, want)
	}
}
