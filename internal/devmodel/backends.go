package devmodel

import (
	"time"

	"ipmgo/internal/perfmodel"
)

// Built-in backends. c2050 reproduces the paper's Dirac-cluster device
// exactly (the default everywhere); a100 is a modern data-center
// profile with more SMs, faster clocks and a second copy engine per
// direction; cl-generic is the AMD/OpenCL-flavoured device the clsim
// frontend targets. Power figures are board-level estimates split idle
// vs active per engine class — the model parameters, like the
// perfmodel peaks, come from published datasheets.

func init() {
	Register("c2050", Spec{
		GPU:         perfmodel.TeslaC2050(),
		CopyEngines: 1,
		Power: PowerSpec{
			IdleWatts:   45,
			KernelWatts: 190,
			CopyWatts:   70,
			MemsetWatts: 120,
		},
	})

	Register("a100", Spec{
		GPU: perfmodel.GPUSpec{
			Name:            "A100-SXM4-40GB",
			MultiProcessors: 108,
			CoresPerMP:      64,
			ClockGHz:        1.41,
			PeakDPGFlops:    9700,
			PeakSPGFlops:    19500,
			MemBandwidthGBs: 1555,
			MemBytes:        40 << 30,
			PCIeH2DGBs:      24.5,
			PCIeD2HGBs:      26.1,
			PCIeLatency:     5 * time.Microsecond,
			PinnedFactor:    1.25,
			KernelLaunch:    4 * time.Microsecond,
			KernelDispatch:  2 * time.Microsecond,
			EventRecordCost: 1 * time.Microsecond,
			ContextInit:     300 * time.Millisecond,
			MaxConcurrent:   128,
			APICallCost:     150 * time.Nanosecond,
		},
		CopyEngines: 2,
		Power: PowerSpec{
			IdleWatts:   55,
			KernelWatts: 330,
			CopyWatts:   90,
			MemsetWatts: 250,
		},
	})

	Register("cl-generic", Spec{
		GPU: perfmodel.GPUSpec{
			Name:            "Generic CL Device",
			MultiProcessors: 20,
			CoresPerMP:      80,
			ClockGHz:        0.85,
			PeakDPGFlops:    544,
			PeakSPGFlops:    2720,
			MemBandwidthGBs: 154,
			MemBytes:        1 << 30,
			PCIeH2DGBs:      5.5,
			PCIeD2HGBs:      5.9,
			PCIeLatency:     12 * time.Microsecond,
			PinnedFactor:    1.3,
			KernelLaunch:    8 * time.Microsecond,
			KernelDispatch:  4 * time.Microsecond,
			EventRecordCost: 3 * time.Microsecond,
			ContextInit:     600 * time.Millisecond,
			MaxConcurrent:   1,
			APICallCost:     250 * time.Nanosecond,
		},
		CopyEngines: 1,
		Power: PowerSpec{
			IdleWatts:   27,
			KernelWatts: 150,
			CopyWatts:   55,
			MemsetWatts: 95,
		},
	})
}
