package devmodel

import (
	"fmt"
	"io"
)

// WriteList renders the registry for -list-devices: one block per
// backend with the performance and power parameters a user needs to
// pick between them. Backends print in name order, so the output is
// stable for scripts and fail-fast error messages.
func WriteList(w io.Writer) {
	for _, s := range List() {
		fmt.Fprintf(w, "%-12s %s\n", s.Name, s.GPU.Name)
		fmt.Fprintf(w, "%-12s %d SMs x %d cores @ %.2f GHz, %.0f/%.0f GFlop/s DP/SP, %.0f GB/s, %d MiB\n",
			"", s.GPU.MultiProcessors, s.GPU.CoresPerMP, s.GPU.ClockGHz,
			s.GPU.PeakDPGFlops, s.GPU.PeakSPGFlops, s.GPU.MemBandwidthGBs, s.GPU.MemBytes>>20)
		fmt.Fprintf(w, "%-12s %d concurrent kernel(s), %d copy engine(s)/direction, context init %v\n",
			"", s.GPU.MaxConcurrent, s.EffectiveCopyEngines(), s.GPU.ContextInit)
		if s.Power.Zero() {
			fmt.Fprintf(w, "%-12s power model: none (no energy attribution)\n", "")
		} else {
			fmt.Fprintf(w, "%-12s power: %.0f W idle + %.0f W kernel / %.0f W copy / %.0f W memset (active)\n",
				"", s.Power.IdleWatts, s.Power.KernelWatts, s.Power.CopyWatts, s.Power.MemsetWatts)
		}
	}
}
