// Package cublas simulates NVIDIA's CUBLAS library (the CUDA-3.x v1 API
// the paper monitors: cublasInit, cublasSetMatrix, cublasDgemm, ...) on
// top of the simulated CUDA runtime.
//
// The library is functional: matrices really live in simulated device
// memory (column-major, as in BLAS/Fortran) and the kernels really
// compute, while execution time comes from roofline cost models of the
// Fermi-generation CUBLAS kernels. All device work is issued through a
// cudart.API value, so when IPM interposes on the runtime the library's
// internal transfers and launches are monitored exactly as on a real
// system; interposing on the library itself is internal/ipmblas.
package cublas

import (
	"fmt"

	"ipmgo/internal/cudart"
	"ipmgo/internal/gpusim"
)

// BLAS is the CUBLAS call surface applications and the thunking wrappers
// program against — the interposition seam for internal/ipmblas.
type BLAS interface {
	// Memory helpers (cublasAlloc / cublasFree).
	Alloc(n, elemSize int) (cudart.DevPtr, error)
	Free(p cudart.DevPtr) error

	// Blocking host<->device data movement.
	SetMatrix(rows, cols, elemSize int, src []byte, lda int, dst cudart.DevPtr, ldb int) error
	GetMatrix(rows, cols, elemSize int, src cudart.DevPtr, lda int, dst []byte, ldb int) error
	SetVector(n, elemSize int, src []byte, incx int, dst cudart.DevPtr, incy int) error
	GetVector(n, elemSize int, src cudart.DevPtr, incx int, dst []byte, incy int) error

	// Level 1.
	Daxpy(n int, alpha float64, x cudart.DevPtr, incx int, y cudart.DevPtr, incy int) error
	Dscal(n int, alpha float64, x cudart.DevPtr, incx int) error
	Dcopy(n int, x cudart.DevPtr, incx int, y cudart.DevPtr, incy int) error
	Ddot(n int, x cudart.DevPtr, incx int, y cudart.DevPtr, incy int) (float64, error)
	Dnrm2(n int, x cudart.DevPtr, incx int) (float64, error)
	Idamax(n int, x cudart.DevPtr, incx int) (int, error)

	// Level 2.
	Dgemv(trans byte, m, n int, alpha float64, a cudart.DevPtr, lda int,
		x cudart.DevPtr, incx int, beta float64, y cudart.DevPtr, incy int) error

	// Level 3.
	Dgemm(ta, tb byte, m, n, k int, alpha float64, a cudart.DevPtr, lda int,
		b cudart.DevPtr, ldb int, beta float64, c cudart.DevPtr, ldc int) error
	Zgemm(ta, tb byte, m, n, k int, alpha complex128, a cudart.DevPtr, lda int,
		b cudart.DevPtr, ldb int, beta complex128, c cudart.DevPtr, ldc int) error
	Dtrsm(side, uplo, trans, diag byte, m, n int, alpha float64,
		a cudart.DevPtr, lda int, b cudart.DevPtr, ldb int) error

	// Shutdown releases the library (cublasShutdown).
	Shutdown() error
}

// Handle is the concrete CUBLAS implementation.
type Handle struct {
	api      cudart.API
	costOnly bool
}

var _ BLAS = (*Handle)(nil)

// NewHandle creates a CUBLAS handle without touching the device; the CUDA
// context is initialised lazily by the first real call, as applications
// observe (the paper's Fig. 4 shows the cost inside the first cudaMalloc).
func NewHandle(api cudart.API) *Handle { return &Handle{api: api} }

// Init initialises CUBLAS on the runtime (cublasInit), eagerly touching
// the device so context creation is paid here.
func Init(api cudart.API) (*Handle, error) {
	if _, _, err := api.MemGetInfo(); err != nil {
		return nil, fmt.Errorf("cublas: init: %w", err)
	}
	return NewHandle(api), nil
}

// Shutdown releases the library.
func (h *Handle) Shutdown() error { return nil }

// SetCostOnly disables the functional payload of subsequent kernels: the
// timing model still runs, but no arithmetic is performed. Large workload
// models use this to keep simulation cost independent of problem size.
func (h *Handle) SetCostOnly(v bool) { h.costOnly = v }

// Alloc allocates an n-element device buffer (cublasAlloc).
func (h *Handle) Alloc(n, elemSize int) (cudart.DevPtr, error) {
	if n < 0 || elemSize <= 0 {
		return cudart.DevPtr{}, fmt.Errorf("cublas: bad alloc %d x %d", n, elemSize)
	}
	return h.api.Malloc(int64(n) * int64(elemSize))
}

// Free releases a device buffer (cublasFree).
func (h *Handle) Free(p cudart.DevPtr) error { return h.api.Free(p) }

func checkLD(rows, lda, ldb int) error {
	if lda != rows || ldb != rows {
		return fmt.Errorf("cublas: only contiguous leading dimensions supported (rows=%d lda=%d ldb=%d)", rows, lda, ldb)
	}
	return nil
}

// SetMatrix copies a host matrix to the device (cublasSetMatrix) — a
// blocking transfer, and the dominant cost of the thunking path the paper
// measures for PARATEC.
func (h *Handle) SetMatrix(rows, cols, elemSize int, src []byte, lda int, dst cudart.DevPtr, ldb int) error {
	if err := checkLD(rows, lda, ldb); err != nil {
		return err
	}
	n := int64(rows) * int64(cols) * int64(elemSize)
	return h.api.Memcpy(cudart.DevicePtr(dst), cudart.HostPtr(src), n, cudart.MemcpyHostToDevice)
}

// GetMatrix copies a device matrix to the host (cublasGetMatrix).
func (h *Handle) GetMatrix(rows, cols, elemSize int, src cudart.DevPtr, lda int, dst []byte, ldb int) error {
	if err := checkLD(rows, lda, ldb); err != nil {
		return err
	}
	n := int64(rows) * int64(cols) * int64(elemSize)
	return h.api.Memcpy(cudart.HostPtr(dst), cudart.DevicePtr(src), n, cudart.MemcpyDeviceToHost)
}

// SetVector copies a host vector to the device (cublasSetVector).
func (h *Handle) SetVector(n, elemSize int, src []byte, incx int, dst cudart.DevPtr, incy int) error {
	if incx != 1 || incy != 1 {
		return fmt.Errorf("cublas: only unit strides supported")
	}
	return h.api.Memcpy(cudart.DevicePtr(dst), cudart.HostPtr(src), int64(n)*int64(elemSize), cudart.MemcpyHostToDevice)
}

// GetVector copies a device vector to the host (cublasGetVector).
func (h *Handle) GetVector(n, elemSize int, src cudart.DevPtr, incx int, dst []byte, incy int) error {
	if incx != 1 || incy != 1 {
		return fmt.Errorf("cublas: only unit strides supported")
	}
	return h.api.Memcpy(cudart.HostPtr(dst), cudart.DevicePtr(src), int64(n)*int64(elemSize), cudart.MemcpyDeviceToHost)
}

// f64 returns a float64 view of n elements of device memory at p.
func f64(dev *gpusim.Device, p cudart.DevPtr, n int) (gpusim.F64View, error) {
	b, err := dev.Bytes(p, gpusim.F64Bytes(n))
	if err != nil {
		return gpusim.F64View{}, err
	}
	return gpusim.Float64s(b), nil
}

// c128 returns a complex128 view of n elements of device memory at p.
func c128(dev *gpusim.Device, p cudart.DevPtr, n int) (gpusim.C128View, error) {
	b, err := dev.Bytes(p, gpusim.C128Bytes(n))
	if err != nil {
		return gpusim.C128View{}, err
	}
	return gpusim.Complex128s(b), nil
}

// launch submits a CUBLAS kernel on the NULL stream through the runtime.
func (h *Handle) launch(fn *cudart.Func, m, n int) error {
	if h.costOnly {
		stripped := *fn
		stripped.Body = nil
		fn = &stripped
	}
	grid := cudart.Dim3{X: (m + 63) / 64, Y: (n + 15) / 16}
	if grid.X < 1 {
		grid.X = 1
	}
	if grid.Y < 1 {
		grid.Y = 1
	}
	return h.api.LaunchKernel(fn, grid, cudart.Dim3{X: 64}, 0)
}

// scalarResult launches a reduction kernel that leaves its float64 result
// in a temporary device word, then reads it back with a blocking D2H copy
// (this is why Ddot and friends synchronise the stream, as on real CUBLAS).
func (h *Handle) scalarResult(fn *cudart.Func) (float64, error) {
	tmp, err := h.api.Malloc(8)
	if err != nil {
		return 0, err
	}
	defer h.api.Free(tmp)
	fnWithOut := *fn
	inner := fn.Body
	fnWithOut.Body = func(ctx cudart.LaunchContext) {
		ctx.Args = append(ctx.Args, tmp)
		inner(ctx)
	}
	if err := h.launch(&fnWithOut, 1, 1); err != nil {
		return 0, err
	}
	out := make([]byte, 8)
	if err := h.api.Memcpy(cudart.HostPtr(out), cudart.DevicePtr(tmp), 8, cudart.MemcpyDeviceToHost); err != nil {
		return 0, err
	}
	return gpusim.Float64s(out).At(0), nil
}
