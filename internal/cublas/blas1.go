package cublas

import (
	"fmt"
	"math"

	"ipmgo/internal/cudart"
	"ipmgo/internal/perfmodel"
)

// Level-1 and level-2 BLAS. These kernels are memory-bandwidth bound; the
// cost models charge the bytes each touches at an achievable fraction of
// peak bandwidth (CUBLAS level-1 kernels typically reach ~70-80%).

const l1Eff = 0.75

func vecCost(bytes int64) perfmodel.KernelCost {
	return perfmodel.KernelCost{MemBytes: float64(bytes), Efficiency: l1Eff, Floor: 3e3} // 3us floor
}

func checkVec(n, incx, incy int) error {
	if n < 0 {
		return fmt.Errorf("cublas: negative length %d", n)
	}
	if incx != 1 || incy != 1 {
		return fmt.Errorf("cublas: only unit strides supported (incx=%d incy=%d)", incx, incy)
	}
	return nil
}

// Daxpy computes y += alpha*x (cublasDaxpy).
func (h *Handle) Daxpy(n int, alpha float64, x cudart.DevPtr, incx int, y cudart.DevPtr, incy int) error {
	if err := checkVec(n, incx, incy); err != nil {
		return err
	}
	fn := &cudart.Func{
		Name:      "daxpy_kernel",
		FixedCost: vecCost(int64(n) * 24), // read x, read y, write y
		Body: func(ctx cudart.LaunchContext) {
			xv, err1 := f64(ctx.Dev, x, n)
			yv, err2 := f64(ctx.Dev, y, n)
			if err1 != nil || err2 != nil {
				return
			}
			for i := 0; i < n; i++ {
				yv.Set(i, yv.At(i)+alpha*xv.At(i))
			}
		},
	}
	return h.launch(fn, n, 1)
}

// Dscal computes x *= alpha (cublasDscal).
func (h *Handle) Dscal(n int, alpha float64, x cudart.DevPtr, incx int) error {
	if err := checkVec(n, incx, 1); err != nil {
		return err
	}
	fn := &cudart.Func{
		Name:      "dscal_kernel",
		FixedCost: vecCost(int64(n) * 16),
		Body: func(ctx cudart.LaunchContext) {
			xv, err := f64(ctx.Dev, x, n)
			if err != nil {
				return
			}
			for i := 0; i < n; i++ {
				xv.Set(i, alpha*xv.At(i))
			}
		},
	}
	return h.launch(fn, n, 1)
}

// Dcopy copies x into y (cublasDcopy).
func (h *Handle) Dcopy(n int, x cudart.DevPtr, incx int, y cudart.DevPtr, incy int) error {
	if err := checkVec(n, incx, incy); err != nil {
		return err
	}
	fn := &cudart.Func{
		Name:      "dcopy_kernel",
		FixedCost: vecCost(int64(n) * 16),
		Body: func(ctx cudart.LaunchContext) {
			xv, err1 := f64(ctx.Dev, x, n)
			yv, err2 := f64(ctx.Dev, y, n)
			if err1 != nil || err2 != nil {
				return
			}
			for i := 0; i < n; i++ {
				yv.Set(i, xv.At(i))
			}
		},
	}
	return h.launch(fn, n, 1)
}

// Ddot returns x . y (cublasDdot). The result is produced on the device
// and fetched with a blocking transfer, so the call synchronises like the
// real library.
func (h *Handle) Ddot(n int, x cudart.DevPtr, incx int, y cudart.DevPtr, incy int) (float64, error) {
	if err := checkVec(n, incx, incy); err != nil {
		return 0, err
	}
	fn := &cudart.Func{
		Name:      "ddot_kernel",
		FixedCost: vecCost(int64(n) * 16),
		Body: func(ctx cudart.LaunchContext) {
			out := ctx.Args.Arg(len(ctx.Args) - 1).(cudart.DevPtr)
			xv, err1 := f64(ctx.Dev, x, n)
			yv, err2 := f64(ctx.Dev, y, n)
			ov, err3 := f64(ctx.Dev, out, 1)
			if err1 != nil || err2 != nil || err3 != nil {
				return
			}
			var s float64
			for i := 0; i < n; i++ {
				s += xv.At(i) * yv.At(i)
			}
			ov.Set(0, s)
		},
	}
	return h.scalarResult(fn)
}

// Dnrm2 returns the Euclidean norm of x (cublasDnrm2).
func (h *Handle) Dnrm2(n int, x cudart.DevPtr, incx int) (float64, error) {
	if err := checkVec(n, incx, 1); err != nil {
		return 0, err
	}
	fn := &cudart.Func{
		Name:      "dnrm2_kernel",
		FixedCost: vecCost(int64(n) * 8),
		Body: func(ctx cudart.LaunchContext) {
			out := ctx.Args.Arg(len(ctx.Args) - 1).(cudart.DevPtr)
			xv, err1 := f64(ctx.Dev, x, n)
			ov, err2 := f64(ctx.Dev, out, 1)
			if err1 != nil || err2 != nil {
				return
			}
			var s float64
			for i := 0; i < n; i++ {
				v := xv.At(i)
				s += v * v
			}
			ov.Set(0, math.Sqrt(s))
		},
	}
	return h.scalarResult(fn)
}

// Idamax returns the 1-based index of the element of maximum absolute
// value (cublasIdamax), following the BLAS convention.
func (h *Handle) Idamax(n int, x cudart.DevPtr, incx int) (int, error) {
	if err := checkVec(n, incx, 1); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	fn := &cudart.Func{
		Name:      "idamax_kernel",
		FixedCost: vecCost(int64(n) * 8),
		Body: func(ctx cudart.LaunchContext) {
			out := ctx.Args.Arg(len(ctx.Args) - 1).(cudart.DevPtr)
			xv, err1 := f64(ctx.Dev, x, n)
			ov, err2 := f64(ctx.Dev, out, 1)
			if err1 != nil || err2 != nil {
				return
			}
			best, bestIdx := math.Abs(xv.At(0)), 0
			for i := 1; i < n; i++ {
				if a := math.Abs(xv.At(i)); a > best {
					best, bestIdx = a, i
				}
			}
			ov.Set(0, float64(bestIdx+1))
		},
	}
	v, err := h.scalarResult(fn)
	return int(v), err
}

// Dgemv computes y = alpha*op(A)*x + beta*y (cublasDgemv), column-major.
func (h *Handle) Dgemv(trans byte, m, n int, alpha float64, a cudart.DevPtr, lda int,
	x cudart.DevPtr, incx int, beta float64, y cudart.DevPtr, incy int) error {
	if lda != m {
		return fmt.Errorf("cublas: dgemv requires lda == m")
	}
	if err := checkVec(m, incx, incy); err != nil {
		return err
	}
	if trans != 'N' && trans != 'T' {
		return fmt.Errorf("cublas: dgemv trans %q", trans)
	}
	rows, cols := m, n
	if trans == 'T' {
		rows, cols = n, m
	}
	fn := &cudart.Func{
		Name: "dgemv_kernel",
		FixedCost: perfmodel.KernelCost{
			FLOPs:      2 * float64(m) * float64(n),
			MemBytes:   8 * float64(m) * float64(n),
			Efficiency: l1Eff,
			Floor:      5e3,
		},
		Body: func(ctx cudart.LaunchContext) {
			av, err1 := f64(ctx.Dev, a, m*n)
			xv, err2 := f64(ctx.Dev, x, cols)
			yv, err3 := f64(ctx.Dev, y, rows)
			if err1 != nil || err2 != nil || err3 != nil {
				return
			}
			for i := 0; i < rows; i++ {
				var s float64
				for j := 0; j < cols; j++ {
					var aij float64
					if trans == 'N' {
						aij = av.At(i + j*m) // A[i,j]
					} else {
						aij = av.At(j + i*m) // A[j,i]
					}
					s += aij * xv.At(j)
				}
				yv.Set(i, alpha*s+beta*yv.At(i))
			}
		},
	}
	return h.launch(fn, rows, 1)
}
