package cublas

import (
	"fmt"

	"ipmgo/internal/gpusim"
)

// Thunking wrappers (paper Section IV-D): they preserve the plain BLAS
// calling convention for host data and hide all device interaction —
// allocate, cublasSetMatrix the operands, run the kernel, cublasGetMatrix
// the result, free. This is the convenient but purely blocking path whose
// transfer cost IPM exposes for PARATEC; the "direct" path is simply
// calling the BLAS interface with device pointers.
//
// They are package functions over the BLAS interface so that a monitored
// library handle (internal/ipmblas) sees every internal call.

// F64ToBytes converts host float64 data to its device byte representation.
func F64ToBytes(xs []float64) []byte {
	b := make([]byte, gpusim.F64Bytes(len(xs)))
	gpusim.Float64s(b).CopyIn(xs)
	return b
}

// BytesToF64 converts device bytes back to float64 host data.
func BytesToF64(b []byte, out []float64) { gpusim.Float64s(b).CopyOut(out) }

// C128ToBytes converts host complex128 data to its device byte
// representation.
func C128ToBytes(xs []complex128) []byte {
	b := make([]byte, gpusim.C128Bytes(len(xs)))
	gpusim.Complex128s(b).CopyIn(xs)
	return b
}

// BytesToC128 converts device bytes back to complex128 host data.
func BytesToC128(b []byte, out []complex128) { gpusim.Complex128s(b).CopyOut(out) }

// DgemmThunk runs C = alpha*op(A)*op(B) + beta*C entirely from host
// buffers through the thunking path.
func DgemmThunk(h BLAS, ta, tb byte, m, n, k int, alpha float64, a []float64, lda int,
	b []float64, ldb int, beta float64, c []float64, ldc int) error {
	arows, brows := m, k
	if ta != 'N' {
		arows = k
	}
	if tb != 'N' {
		brows = n
	}
	acols, bcols := k, n
	if ta != 'N' {
		acols = m
	}
	if tb != 'N' {
		bcols = k
	}
	da, err := h.Alloc(arows*acols, 8)
	if err != nil {
		return fmt.Errorf("cublas: thunk alloc A: %w", err)
	}
	defer h.Free(da)
	db, err := h.Alloc(brows*bcols, 8)
	if err != nil {
		return fmt.Errorf("cublas: thunk alloc B: %w", err)
	}
	defer h.Free(db)
	dc, err := h.Alloc(m*n, 8)
	if err != nil {
		return fmt.Errorf("cublas: thunk alloc C: %w", err)
	}
	defer h.Free(dc)

	if err := h.SetMatrix(arows, acols, 8, F64ToBytes(a), lda, da, arows); err != nil {
		return err
	}
	if err := h.SetMatrix(brows, bcols, 8, F64ToBytes(b), ldb, db, brows); err != nil {
		return err
	}
	if err := h.SetMatrix(m, n, 8, F64ToBytes(c), ldc, dc, m); err != nil {
		return err
	}
	if err := h.Dgemm(ta, tb, m, n, k, alpha, da, arows, db, brows, beta, dc, m); err != nil {
		return err
	}
	out := make([]byte, gpusim.F64Bytes(m*n))
	if err := h.GetMatrix(m, n, 8, dc, m, out, ldc); err != nil {
		return err
	}
	BytesToF64(out, c)
	return nil
}

// ZgemmThunk is the double-complex thunking gemm, PARATEC's workhorse.
func ZgemmThunk(h BLAS, ta, tb byte, m, n, k int, alpha complex128, a []complex128, lda int,
	b []complex128, ldb int, beta complex128, c []complex128, ldc int) error {
	arows, brows := m, k
	if ta != 'N' {
		arows = k
	}
	if tb != 'N' {
		brows = n
	}
	acols, bcols := k, n
	if ta != 'N' {
		acols = m
	}
	if tb != 'N' {
		bcols = k
	}
	da, err := h.Alloc(arows*acols, 16)
	if err != nil {
		return fmt.Errorf("cublas: thunk alloc A: %w", err)
	}
	defer h.Free(da)
	db, err := h.Alloc(brows*bcols, 16)
	if err != nil {
		return fmt.Errorf("cublas: thunk alloc B: %w", err)
	}
	defer h.Free(db)
	dc, err := h.Alloc(m*n, 16)
	if err != nil {
		return fmt.Errorf("cublas: thunk alloc C: %w", err)
	}
	defer h.Free(dc)

	if err := h.SetMatrix(arows, acols, 16, C128ToBytes(a), lda, da, arows); err != nil {
		return err
	}
	if err := h.SetMatrix(brows, bcols, 16, C128ToBytes(b), ldb, db, brows); err != nil {
		return err
	}
	if err := h.SetMatrix(m, n, 16, C128ToBytes(c), ldc, dc, m); err != nil {
		return err
	}
	if err := h.Zgemm(ta, tb, m, n, k, alpha, da, arows, db, brows, beta, dc, m); err != nil {
		return err
	}
	out := make([]byte, gpusim.C128Bytes(m*n))
	if err := h.GetMatrix(m, n, 16, dc, m, out, ldc); err != nil {
		return err
	}
	BytesToC128(out, c)
	return nil
}
