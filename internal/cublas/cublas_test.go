package cublas

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"ipmgo/internal/cudart"
	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

func fastSpec() perfmodel.GPUSpec {
	s := perfmodel.TeslaC2050()
	s.ContextInit = 0
	s.APICallCost = 0
	return s
}

// withHandle runs fn in a host process with a fresh CUBLAS handle.
func withHandle(t *testing.T, fn func(h *Handle, rt *cudart.Runtime)) time.Duration {
	t.Helper()
	e := des.NewEngine()
	dev := gpusim.NewDevice(e, fastSpec())
	e.Spawn("host", func(p *des.Proc) {
		rt := cudart.NewRuntime(p, dev, cudart.Options{})
		h, err := Init(rt)
		if err != nil {
			t.Error(err)
			return
		}
		defer h.Shutdown()
		fn(h, rt)
	})
	if err := e.RunFor(time.Hour); err != nil {
		t.Fatal(err)
	}
	return e.Now()
}

// upload allocates and fills a device buffer with float64 data.
func upload(t *testing.T, h *Handle, xs []float64) cudart.DevPtr {
	t.Helper()
	p, err := h.Alloc(len(xs), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetVector(len(xs), 8, F64ToBytes(xs), 1, p, 1); err != nil {
		t.Fatal(err)
	}
	return p
}

func download(t *testing.T, h *Handle, p cudart.DevPtr, n int) []float64 {
	t.Helper()
	b := make([]byte, gpusim.F64Bytes(n))
	if err := h.GetVector(n, 8, p, 1, b, 1); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n)
	BytesToF64(b, out)
	return out
}

// refDgemm is the host reference implementation (column-major).
func refDgemm(ta, tb byte, m, n, k int, alpha float64, a []float64, b []float64, beta float64, c []float64) {
	arows, brows := m, k
	if ta != 'N' {
		arows = k
	}
	if tb != 'N' {
		brows = n
	}
	at := func(i, l int) float64 {
		if ta == 'N' {
			return a[i+l*arows]
		}
		return a[l+i*arows]
	}
	bt := func(l, j int) float64 {
		if tb == 'N' {
			return b[l+j*brows]
		}
		return b[j+l*brows]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			for l := 0; l < k; l++ {
				s += at(i, l) * bt(l, j)
			}
			c[i+j*m] = alpha*s + beta*c[i+j*m]
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func maxAbsDiff(a, b []float64) float64 {
	var d float64
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

func TestDgemmAllTransposeCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const m, n, k = 7, 5, 6
	for _, ta := range []byte{'N', 'T'} {
		for _, tb := range []byte{'N', 'T'} {
			a := randSlice(rng, m*k)
			b := randSlice(rng, k*n)
			c := randSlice(rng, m*n)
			want := append([]float64(nil), c...)
			refDgemm(ta, tb, m, n, k, 1.5, a, b, -0.5, want)
			arows, brows := m, k
			if ta != 'N' {
				arows = k
			}
			if tb != 'N' {
				brows = n
			}
			withHandle(t, func(h *Handle, rt *cudart.Runtime) {
				da, db, dc := upload(t, h, a), upload(t, h, b), upload(t, h, c)
				if err := h.Dgemm(ta, tb, m, n, k, 1.5, da, arows, db, brows, -0.5, dc, m); err != nil {
					t.Fatalf("%c%c: %v", ta, tb, err)
				}
				got := download(t, h, dc, m*n)
				if d := maxAbsDiff(got, want); d > 1e-12 {
					t.Errorf("dgemm %c%c: max diff %g", ta, tb, d)
				}
			})
		}
	}
}

func TestZgemmWithConjugate(t *testing.T) {
	const m, n, k = 4, 3, 5
	rng := rand.New(rand.NewSource(2))
	mk := func(n int) []complex128 {
		xs := make([]complex128, n)
		for i := range xs {
			xs[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		return xs
	}
	a, b, c := mk(m*k), mk(k*n), mk(m*n)
	alpha, beta := complex(1.2, -0.3), complex(0.5, 0.1)
	// Reference with ta='C' (conj transpose of A stored k x m), tb='N'.
	want := append([]complex128(nil), c...)
	aStored := mk(k * m) // A stored as k x m for 'C'
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s complex128
			for l := 0; l < k; l++ {
				av := aStored[l+i*k]
				s += complex(real(av), -imag(av)) * b[l+j*k]
			}
			want[i+j*m] = alpha*s + beta*want[i+j*m]
		}
	}
	withHandle(t, func(h *Handle, rt *cudart.Runtime) {
		da, _ := h.Alloc(k*m, 16)
		db, _ := h.Alloc(k*n, 16)
		dc, _ := h.Alloc(m*n, 16)
		h.SetVector(k*m, 16, C128ToBytes(aStored), 1, da, 1)
		h.SetVector(k*n, 16, C128ToBytes(b), 1, db, 1)
		h.SetVector(m*n, 16, C128ToBytes(c), 1, dc, 1)
		if err := h.Zgemm('C', 'N', m, n, k, alpha, da, k, db, k, beta, dc, m); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, gpusim.C128Bytes(m*n))
		h.GetVector(m*n, 16, dc, 1, out, 1)
		got := make([]complex128, m*n)
		BytesToC128(out, got)
		for i := range got {
			if math.Abs(real(got[i]-want[i])) > 1e-12 || math.Abs(imag(got[i]-want[i])) > 1e-12 {
				t.Fatalf("zgemm C/N elem %d: %v vs %v", i, got[i], want[i])
			}
		}
	})
	_ = a
	_ = c
}

func TestDtrsmSolvesSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m, n = 6, 4
	for _, side := range []byte{'L', 'R'} {
		for _, uplo := range []byte{'U', 'L'} {
			for _, trans := range []byte{'N', 'T'} {
				for _, diag := range []byte{'N', 'U'} {
					asize := m
					if side == 'R' {
						asize = n
					}
					// Well-conditioned triangular A.
					a := make([]float64, asize*asize)
					for j := 0; j < asize; j++ {
						for i := 0; i < asize; i++ {
							if (uplo == 'L' && i >= j) || (uplo == 'U' && i <= j) {
								a[i+j*asize] = rng.NormFloat64() * 0.3
							}
							if i == j {
								a[i+j*asize] = 2 + rng.Float64()
							}
						}
					}
					b := randSlice(rng, m*n)
					const alpha = 1.25
					var got []float64
					withHandle(t, func(h *Handle, rt *cudart.Runtime) {
						da, dbp := upload(t, h, a), upload(t, h, b)
						if err := h.Dtrsm(side, uplo, trans, diag, m, n, alpha, da, asize, dbp, m); err != nil {
							t.Fatalf("%c%c%c%c: %v", side, uplo, trans, diag, err)
						}
						got = download(t, h, dbp, m*n)
					})
					// Verify op(A)*X = alpha*B (or X*op(A) for side R) by
					// multiplying back with the effective diagonal.
					eff := append([]float64(nil), a...)
					if diag == 'U' {
						for i := 0; i < asize; i++ {
							eff[i+i*asize] = 1
						}
					}
					check := make([]float64, m*n)
					if side == 'L' {
						refDgemm(trans, 'N', m, n, m, 1, eff, got, 0, check)
					} else {
						refDgemm('N', trans, m, n, n, 1, got, eff, 0, check)
					}
					for i := range check {
						if math.Abs(check[i]-alpha*b[i]) > 1e-9 {
							t.Fatalf("dtrsm %c%c%c%c: residual %g at %d",
								side, uplo, trans, diag, check[i]-alpha*b[i], i)
						}
					}
				}
			}
		}
	}
}

func TestLevel1Routines(t *testing.T) {
	withHandle(t, func(h *Handle, rt *cudart.Runtime) {
		x := upload(t, h, []float64{1, -2, 3, -4})
		y := upload(t, h, []float64{10, 20, 30, 40})
		if err := h.Daxpy(4, 2, x, 1, y, 1); err != nil {
			t.Fatal(err)
		}
		if got := download(t, h, y, 4); got[0] != 12 || got[3] != 32 {
			t.Errorf("daxpy = %v", got)
		}
		if err := h.Dscal(4, -1, x, 1); err != nil {
			t.Fatal(err)
		}
		if got := download(t, h, x, 4); got[1] != 2 {
			t.Errorf("dscal = %v", got)
		}
		if err := h.Dcopy(4, x, 1, y, 1); err != nil {
			t.Fatal(err)
		}
		if got := download(t, h, y, 4); got[2] != -3 {
			t.Errorf("dcopy = %v", got)
		}
		// x is now {-1, 2, -3, 4}; dot(x,x) = 1+4+9+16 = 30.
		dot, err := h.Ddot(4, x, 1, x, 1)
		if err != nil {
			t.Fatal(err)
		}
		if dot != 30 {
			t.Errorf("ddot = %v, want 30", dot)
		}
		nrm, err := h.Dnrm2(4, x, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(nrm-math.Sqrt(30)) > 1e-12 {
			t.Errorf("dnrm2 = %v", nrm)
		}
		idx, err := h.Idamax(4, x, 1)
		if err != nil {
			t.Fatal(err)
		}
		if idx != 4 { // 1-based index of |4|
			t.Errorf("idamax = %d, want 4", idx)
		}
	})
}

func TestDgemv(t *testing.T) {
	const m, n = 3, 2
	a := []float64{1, 2, 3, 4, 5, 6} // 3x2 col-major: col0={1,2,3}, col1={4,5,6}
	x := []float64{1, -1}
	y := []float64{10, 10, 10}
	withHandle(t, func(h *Handle, rt *cudart.Runtime) {
		da, dx, dy := upload(t, h, a), upload(t, h, x), upload(t, h, y)
		// y = 2*A*x + 1*y = 2*{-3,-3,-3} + {10,10,10} = {4,4,4}
		if err := h.Dgemv('N', m, n, 2, da, m, dx, 1, 1, dy, 1); err != nil {
			t.Fatal(err)
		}
		if got := download(t, h, dy, 3); got[0] != 4 || got[2] != 4 {
			t.Errorf("dgemv N = %v", got)
		}
		// Transposed: z = A^T * w, w={1,1,1}: {6, 15}.
		dw := upload(t, h, []float64{1, 1, 1})
		dz := upload(t, h, []float64{0, 0})
		if err := h.Dgemv('T', m, n, 1, da, m, dw, 1, 0, dz, 1); err != nil {
			t.Fatal(err)
		}
		if got := download(t, h, dz, 2); got[0] != 6 || got[1] != 15 {
			t.Errorf("dgemv T = %v", got)
		}
	})
}

func TestThunkingWrappers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const m, n, k = 8, 6, 7
	a, b, c := randSlice(rng, m*k), randSlice(rng, k*n), randSlice(rng, m*n)
	want := append([]float64(nil), c...)
	refDgemm('N', 'N', m, n, k, 1, a, b, 0.25, want)
	withHandle(t, func(h *Handle, rt *cudart.Runtime) {
		if err := DgemmThunk(h, 'N', 'N', m, n, k, 1, a, m, b, k, 0.25, c, m); err != nil {
			t.Fatal(err)
		}
	})
	if d := maxAbsDiff(c, want); d > 1e-12 {
		t.Errorf("thunk dgemm max diff %g", d)
	}

	// Zgemm thunk.
	za := []complex128{1 + 1i, 2, 3, 4i} // 2x2
	zb := []complex128{1, 1i, -1i, 1}    // 2x2
	zc := []complex128{0, 0, 0, 0}       // 2x2
	wantZ := make([]complex128, 4)       // A*B
	for j := 0; j < 2; j++ {             // reference
		for i := 0; i < 2; i++ {
			var s complex128
			for l := 0; l < 2; l++ {
				s += za[i+l*2] * zb[l+j*2]
			}
			wantZ[i+j*2] = s
		}
	}
	withHandle(t, func(h *Handle, rt *cudart.Runtime) {
		if err := ZgemmThunk(h, 'N', 'N', 2, 2, 2, 1, za, 2, zb, 2, 0, zc, 2); err != nil {
			t.Fatal(err)
		}
	})
	for i := range zc {
		if zc[i] != wantZ[i] {
			t.Errorf("thunk zgemm elem %d = %v, want %v", i, zc[i], wantZ[i])
		}
	}
}

func TestErrorPaths(t *testing.T) {
	withHandle(t, func(h *Handle, rt *cudart.Runtime) {
		d, _ := h.Alloc(16, 8)
		if err := h.Dgemm('X', 'N', 2, 2, 2, 1, d, 2, d, 2, 0, d, 2); err == nil {
			t.Error("bad transpose accepted")
		}
		if err := h.Dgemm('N', 'N', 2, 2, 2, 1, d, 3, d, 2, 0, d, 2); err == nil {
			t.Error("bad lda accepted")
		}
		if err := h.Daxpy(4, 1, d, 2, d, 1); err == nil {
			t.Error("non-unit stride accepted")
		}
		if err := h.Dtrsm('X', 'U', 'N', 'N', 2, 2, 1, d, 2, d, 2); err == nil {
			t.Error("bad side accepted")
		}
		if err := h.SetMatrix(2, 2, 8, make([]byte, 32), 3, d, 2); err == nil {
			t.Error("bad SetMatrix lda accepted")
		}
		if _, err := h.Alloc(-1, 8); err == nil {
			t.Error("negative alloc accepted")
		}
	})
}

func TestGemmTimeScalesWithSize(t *testing.T) {
	timeFor := func(sz int) time.Duration {
		return withHandle(t, func(h *Handle, rt *cudart.Runtime) {
			a := make([]float64, sz*sz)
			da, db, dc := upload(t, h, a), upload(t, h, a), upload(t, h, a)
			if err := h.Dgemm('N', 'N', sz, sz, sz, 1, da, sz, db, sz, 0, dc, sz); err != nil {
				t.Fatal(err)
			}
			rt.ThreadSynchronize()
		})
	}
	small, big := timeFor(32), timeFor(64)
	if big <= small {
		t.Errorf("64^3 gemm (%v) not slower than 32^3 (%v)", big, small)
	}
}
