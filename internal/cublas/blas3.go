package cublas

import (
	"fmt"

	"ipmgo/internal/cudart"
	"ipmgo/internal/perfmodel"
)

// Level-3 BLAS. Matrix-matrix kernels are compute bound; Fermi-generation
// CUBLAS dgemm reaches ~55-60% of double-precision peak, zgemm a bit more.

const gemmEff = 0.58

// dgemmKernelName mirrors the kernel naming of Fermi CUBLAS (the paper's
// Fig. 9 lists dgemm_nn_e_kernel and dgemm_nt_tex_kernel inside HPL).
func dgemmKernelName(ta, tb byte) string {
	suffix := func(t byte) string {
		if t == 'T' || t == 'C' {
			return "t"
		}
		return "n"
	}
	return "dgemm_" + suffix(ta) + suffix(tb) + "_kernel"
}

func checkTrans(t byte) error {
	switch t {
	case 'N', 'T', 'C':
		return nil
	}
	return fmt.Errorf("cublas: invalid transpose option %q", t)
}

// Dgemm computes C = alpha*op(A)*op(B) + beta*C (cublasDgemm),
// column-major: op(A) is m x k, op(B) is k x n, C is m x n.
func (h *Handle) Dgemm(ta, tb byte, m, n, k int, alpha float64, a cudart.DevPtr, lda int,
	b cudart.DevPtr, ldb int, beta float64, c cudart.DevPtr, ldc int) error {
	if err := checkTrans(ta); err != nil {
		return err
	}
	if err := checkTrans(tb); err != nil {
		return err
	}
	arows, brows := m, k
	if ta != 'N' {
		arows = k
	}
	if tb != 'N' {
		brows = n
	}
	if lda != arows || ldb != brows || ldc != m {
		return fmt.Errorf("cublas: dgemm requires contiguous leading dimensions")
	}
	fn := &cudart.Func{
		Name: dgemmKernelName(ta, tb),
		FixedCost: perfmodel.KernelCost{
			FLOPs:      2 * float64(m) * float64(n) * float64(k),
			MemBytes:   8 * (float64(m)*float64(k) + float64(k)*float64(n) + 2*float64(m)*float64(n)),
			Efficiency: gemmEff,
			Floor:      10e3,
		},
		Body: func(ctx cudart.LaunchContext) {
			acols := k
			if ta != 'N' {
				acols = m
			}
			bcols := n
			if tb != 'N' {
				bcols = k
			}
			A, e1 := f64(ctx.Dev, a, arows*acols)
			B, e2 := f64(ctx.Dev, b, brows*bcols)
			C, e3 := f64(ctx.Dev, c, m*n)
			if e1 != nil || e2 != nil || e3 != nil {
				return
			}
			at := func(i, l int) float64 { // op(A)[i,l]
				if ta == 'N' {
					return A.At(i + l*arows)
				}
				return A.At(l + i*arows)
			}
			bt := func(l, j int) float64 { // op(B)[l,j]
				if tb == 'N' {
					return B.At(l + j*brows)
				}
				return B.At(j + l*brows)
			}
			for j := 0; j < n; j++ {
				for i := 0; i < m; i++ {
					var s float64
					for l := 0; l < k; l++ {
						s += at(i, l) * bt(l, j)
					}
					C.Set(i+j*m, alpha*s+beta*C.At(i+j*m))
				}
			}
		},
	}
	return h.launch(fn, m, n)
}

// Dtrsm solves op(A)*X = alpha*B (side 'L') or X*op(A) = alpha*B (side
// 'R') for X, overwriting B (cublasDtrsm). A is triangular (uplo 'U' or
// 'L'), optionally unit-diagonal (diag 'U').
func (h *Handle) Dtrsm(side, uplo, trans, diag byte, m, n int, alpha float64,
	a cudart.DevPtr, lda int, b cudart.DevPtr, ldb int) error {
	if side != 'L' && side != 'R' {
		return fmt.Errorf("cublas: dtrsm side %q", side)
	}
	if uplo != 'U' && uplo != 'L' {
		return fmt.Errorf("cublas: dtrsm uplo %q", uplo)
	}
	if err := checkTrans(trans); err != nil {
		return err
	}
	if diag != 'U' && diag != 'N' {
		return fmt.Errorf("cublas: dtrsm diag %q", diag)
	}
	asize := m
	if side == 'R' {
		asize = n
	}
	if lda != asize || ldb != m {
		return fmt.Errorf("cublas: dtrsm requires contiguous leading dimensions")
	}
	fn := &cudart.Func{
		Name: "dtrsm_gpu_64_mm", // the HPL kernel name from the paper's Fig. 9
		FixedCost: perfmodel.KernelCost{
			FLOPs:      float64(asize) * float64(asize) * float64(m*n) / float64(asize),
			MemBytes:   8 * (float64(asize)*float64(asize)/2 + 2*float64(m)*float64(n)),
			Efficiency: gemmEff * 0.7, // trsm runs below gemm efficiency
			Floor:      10e3,
		},
		Body: func(ctx cudart.LaunchContext) {
			A, e1 := f64(ctx.Dev, a, asize*asize)
			B, e2 := f64(ctx.Dev, b, m*n)
			if e1 != nil || e2 != nil {
				return
			}
			// Effective element access with transpose folded in.
			at := func(i, j int) float64 {
				if trans == 'N' {
					return A.At(i + j*asize)
				}
				return A.At(j + i*asize)
			}
			// lower reports whether the *effective* matrix is lower
			// triangular (transposing flips it).
			lower := uplo == 'L'
			if trans != 'N' {
				lower = !lower
			}
			unit := diag == 'U'
			if side == 'L' {
				// Solve op(A) X = alpha B column by column.
				for j := 0; j < n; j++ {
					col := func(i int) float64 { return B.At(i + j*m) }
					setc := func(i int, v float64) { B.Set(i+j*m, v) }
					if lower {
						for i := 0; i < m; i++ {
							s := alpha * col(i)
							for l := 0; l < i; l++ {
								s -= at(i, l) * col(l)
							}
							if !unit {
								s /= at(i, i)
							}
							setc(i, s)
						}
					} else {
						for i := m - 1; i >= 0; i-- {
							s := alpha * col(i)
							for l := i + 1; l < m; l++ {
								s -= at(i, l) * col(l)
							}
							if !unit {
								s /= at(i, i)
							}
							setc(i, s)
						}
					}
				}
			} else {
				// Solve X op(A) = alpha B row by row over columns of X.
				if lower {
					for j := n - 1; j >= 0; j-- {
						for i := 0; i < m; i++ {
							s := alpha * B.At(i+j*m)
							for l := j + 1; l < n; l++ {
								s -= B.At(i+l*m) * at(l, j)
							}
							if !unit {
								s /= at(j, j)
							}
							B.Set(i+j*m, s)
						}
					}
				} else {
					for j := 0; j < n; j++ {
						for i := 0; i < m; i++ {
							s := alpha * B.At(i+j*m)
							for l := 0; l < j; l++ {
								s -= B.At(i+l*m) * at(l, j)
							}
							if !unit {
								s /= at(j, j)
							}
							B.Set(i+j*m, s)
						}
					}
				}
			}
		},
	}
	return h.launch(fn, m, n)
}
