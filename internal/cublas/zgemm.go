package cublas

import (
	"fmt"
	"math/cmplx"

	"ipmgo/internal/cudart"
	"ipmgo/internal/perfmodel"
)

// Zgemm computes C = alpha*op(A)*op(B) + beta*C in double complex
// (cublasZgemm) — the dominant BLAS routine of the paper's PARATEC runs.
// 'C' requests the conjugate transpose.
func (h *Handle) Zgemm(ta, tb byte, m, n, k int, alpha complex128, a cudart.DevPtr, lda int,
	b cudart.DevPtr, ldb int, beta complex128, c cudart.DevPtr, ldc int) error {
	if err := checkTrans(ta); err != nil {
		return err
	}
	if err := checkTrans(tb); err != nil {
		return err
	}
	arows, brows := m, k
	if ta != 'N' {
		arows = k
	}
	if tb != 'N' {
		brows = n
	}
	if lda != arows || ldb != brows || ldc != m {
		return fmt.Errorf("cublas: zgemm requires contiguous leading dimensions")
	}
	fn := &cudart.Func{
		Name: "zgemm_kernel",
		FixedCost: perfmodel.KernelCost{
			// One complex multiply-add is 8 real flops.
			FLOPs:      8 * float64(m) * float64(n) * float64(k),
			MemBytes:   16 * (float64(m)*float64(k) + float64(k)*float64(n) + 2*float64(m)*float64(n)),
			Efficiency: gemmEff * 1.1, // zgemm runs slightly above dgemm efficiency
			Floor:      10e3,
		},
		Body: func(ctx cudart.LaunchContext) {
			acols := k
			if ta != 'N' {
				acols = m
			}
			bcols := n
			if tb != 'N' {
				bcols = k
			}
			A, e1 := c128(ctx.Dev, a, arows*acols)
			B, e2 := c128(ctx.Dev, b, brows*bcols)
			C, e3 := c128(ctx.Dev, c, m*n)
			if e1 != nil || e2 != nil || e3 != nil {
				return
			}
			at := func(i, l int) complex128 {
				switch ta {
				case 'N':
					return A.At(i + l*arows)
				case 'T':
					return A.At(l + i*arows)
				default:
					return cmplx.Conj(A.At(l + i*arows))
				}
			}
			bt := func(l, j int) complex128 {
				switch tb {
				case 'N':
					return B.At(l + j*brows)
				case 'T':
					return B.At(j + l*brows)
				default:
					return cmplx.Conj(B.At(j + l*brows))
				}
			}
			for j := 0; j < n; j++ {
				for i := 0; i < m; i++ {
					var s complex128
					for l := 0; l < k; l++ {
						s += at(i, l) * bt(l, j)
					}
					C.Set(i+j*m, alpha*s+beta*C.At(i+j*m))
				}
			}
		},
	}
	return h.launch(fn, m, n)
}
