package perfmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKernelCostComputeBound(t *testing.T) {
	g := TeslaC2050()
	// 515 GFlop at peak DP should take ~1 s.
	k := KernelCost{FLOPs: 515e9}
	d := k.Duration(g)
	if d < 990*time.Millisecond || d > 1010*time.Millisecond {
		t.Errorf("compute-bound duration = %v, want ~1s", d)
	}
}

func TestKernelCostMemoryBound(t *testing.T) {
	g := TeslaC2050()
	// 144 GB at full memory bandwidth should take ~1 s and dominate the
	// negligible FLOP count.
	k := KernelCost{FLOPs: 1, MemBytes: 144e9}
	d := k.Duration(g)
	if d < 990*time.Millisecond || d > 1010*time.Millisecond {
		t.Errorf("memory-bound duration = %v, want ~1s", d)
	}
}

func TestKernelCostEfficiencyScales(t *testing.T) {
	g := TeslaC2050()
	full := KernelCost{FLOPs: 1e9}.Duration(g)
	half := KernelCost{FLOPs: 1e9, Efficiency: 0.5}.Duration(g)
	ratio := float64(half) / float64(full)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("efficiency 0.5 ratio = %.3f, want ~2", ratio)
	}
}

func TestKernelCostFixedWins(t *testing.T) {
	g := TeslaC2050()
	k := KernelCost{FLOPs: 1e15, Fixed: 7 * time.Millisecond}
	if d := k.Duration(g); d != 7*time.Millisecond {
		t.Errorf("fixed duration = %v, want 7ms", d)
	}
}

func TestKernelCostFloorAndMinimum(t *testing.T) {
	g := TeslaC2050()
	if d := (KernelCost{FLOPs: 1, Floor: 50 * time.Microsecond}).Duration(g); d != 50*time.Microsecond {
		t.Errorf("floored duration = %v, want 50us", d)
	}
	if d := (KernelCost{}).Duration(g); d <= 0 {
		t.Errorf("zero-cost kernel duration = %v, want > 0", d)
	}
}

func TestKernelCostSPFasterThanDP(t *testing.T) {
	g := TeslaC2050()
	dp := KernelCost{FLOPs: 1e9}.Duration(g)
	sp := KernelCost{FLOPs: 1e9, SP: true}.Duration(g)
	if sp >= dp {
		t.Errorf("SP %v not faster than DP %v", sp, dp)
	}
}

func TestTransferCostDirections(t *testing.T) {
	g := TeslaC2050()
	const n = 1 << 30 // 1 GiB
	h2d := TransferCost(g, HostToDevice, n, false)
	d2h := TransferCost(g, DeviceToHost, n, false)
	// D2H is faster on C2050 (6.3 vs 5.7 GB/s).
	if d2h >= h2d {
		t.Errorf("D2H %v should be faster than H2D %v", d2h, h2d)
	}
	// Order of magnitude: ~190 ms for 1 GiB at 5.7 GB/s.
	if h2d < 150*time.Millisecond || h2d > 250*time.Millisecond {
		t.Errorf("H2D 1GiB = %v, want ~190ms", h2d)
	}
}

func TestTransferCostPinnedFaster(t *testing.T) {
	g := TeslaC2050()
	const n = 64 << 20
	if p, u := TransferCost(g, HostToDevice, n, true), TransferCost(g, HostToDevice, n, false); p >= u {
		t.Errorf("pinned %v not faster than pageable %v", p, u)
	}
}

func TestTransferCostZeroAndNegativeBytes(t *testing.T) {
	g := TeslaC2050()
	if d := TransferCost(g, HostToDevice, 0, false); d != g.PCIeLatency {
		t.Errorf("zero-byte transfer = %v, want latency only %v", d, g.PCIeLatency)
	}
	if d := TransferCost(g, DeviceToHost, -5, false); d != g.PCIeLatency {
		t.Errorf("negative-byte transfer = %v, want latency only", d)
	}
}

func TestTransferDirString(t *testing.T) {
	if HostToDevice.String() != "H2D" || DeviceToHost.String() != "D2H" || DeviceToDevice.String() != "D2D" {
		t.Error("TransferDir.String mismatch")
	}
	if TransferDir(99).String() != "?" {
		t.Error("unknown TransferDir should print ?")
	}
}

// Property: transfer cost is monotone in the byte count.
func TestPropTransferMonotone(t *testing.T) {
	g := TeslaC2050()
	prop := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return TransferCost(g, HostToDevice, x, false) <= TransferCost(g, HostToDevice, y, false)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: kernel duration is monotone in FLOPs.
func TestPropKernelMonotone(t *testing.T) {
	g := TeslaC2050()
	prop := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return KernelCost{FLOPs: x}.Duration(g) <= KernelCost{FLOPs: y}.Duration(g)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNetPointToPoint(t *testing.T) {
	ns := QDRInfiniBand()
	// Zero-byte message costs exactly the latency.
	if d := ns.PointToPoint(0, false); d != ns.Latency {
		t.Errorf("empty message = %v, want %v", d, ns.Latency)
	}
	if d := ns.PointToPoint(0, true); d != ns.LocalLatency {
		t.Errorf("empty local message = %v, want %v", d, ns.LocalLatency)
	}
	// Intra-node should beat inter-node for any size.
	for _, n := range []int64{1, 1 << 10, 1 << 20, 1 << 28} {
		if ns.PointToPoint(n, true) >= ns.PointToPoint(n, false) {
			t.Errorf("local transfer of %d bytes not faster", n)
		}
	}
}

func TestNetContentionDegrades(t *testing.T) {
	ns := QDRInfiniBand()
	const n = 1 << 20
	one := ns.Contended(n, false, 1)
	many := ns.Contended(n, false, 16)
	if many <= one {
		t.Errorf("contended transfer %v not slower than single flow %v", many, one)
	}
	if ns.Contended(n, false, 0) != one {
		t.Error("flows<1 should clamp to 1")
	}
}

// Property: contention is monotone in the number of flows.
func TestPropContentionMonotone(t *testing.T) {
	ns := QDRInfiniBand()
	prop := func(f uint8) bool {
		a := ns.Contended(1<<20, false, int(f))
		b := ns.Contended(1<<20, false, int(f)+1)
		return a <= b
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
