// Package perfmodel provides analytic hardware performance models used by
// the simulators: GPU kernel cost (roofline-style), PCIe transfer cost, and
// a Hockney model for the interconnect. All models are deterministic; noise
// is injected separately by internal/noise where an experiment requires it.
package perfmodel

import (
	"math"
	"time"
)

// GPUSpec describes a GPU device. The default values (see TeslaC2050)
// correspond to the NVIDIA Tesla C2050 "Fermi" cards of NERSC's Dirac
// cluster used throughout the paper's evaluation.
type GPUSpec struct {
	Name            string
	MultiProcessors int     // streaming multiprocessors
	CoresPerMP      int     // CUDA cores per SM
	ClockGHz        float64 // core clock
	PeakDPGFlops    float64 // double-precision peak, GFlop/s
	PeakSPGFlops    float64 // single-precision peak, GFlop/s
	MemBandwidthGBs float64 // device memory bandwidth, GB/s
	MemBytes        int64   // device memory capacity

	// PCIe characteristics (gen2 x16 for Dirac).
	PCIeH2DGBs   float64       // host-to-device bandwidth, GB/s
	PCIeD2HGBs   float64       // device-to-host bandwidth, GB/s
	PCIeLatency  time.Duration // per-transfer setup latency
	PinnedFactor float64       // bandwidth multiplier for pinned host memory

	// Runtime characteristics.
	KernelLaunch    time.Duration // host-side cost of an async launch
	KernelDispatch  time.Duration // device-side gap before a kernel starts
	EventRecordCost time.Duration // device-time width of an event record
	ContextInit     time.Duration // cost of first touching the device
	MaxConcurrent   int           // concurrently executing kernels (Fermi: 16)
	APICallCost     time.Duration // host-side cost of a trivial runtime call
}

// TeslaC2050 returns the specification of the Dirac cluster's GPU.
// Peak numbers follow the published C2050 datasheet: 14 SMs x 32 cores at
// 1.15 GHz, 515 GFlop/s DP, 144 GB/s GDDR5, 3 GB with ECC.
func TeslaC2050() GPUSpec {
	return GPUSpec{
		Name:            "Tesla C2050",
		MultiProcessors: 14,
		CoresPerMP:      32,
		ClockGHz:        1.15,
		PeakDPGFlops:    515,
		PeakSPGFlops:    1030,
		MemBandwidthGBs: 144,
		MemBytes:        3 << 30,
		PCIeH2DGBs:      5.7,
		PCIeD2HGBs:      6.3,
		PCIeLatency:     10 * time.Microsecond,
		PinnedFactor:    1.35,
		KernelLaunch:    5 * time.Microsecond,
		KernelDispatch:  3 * time.Microsecond,
		EventRecordCost: 2 * time.Microsecond,
		ContextInit:     1290 * time.Millisecond,
		MaxConcurrent:   16,
		APICallCost:     200 * time.Nanosecond,
	}
}

// KernelCost describes the resource demand of one kernel invocation. The
// model is a simple roofline: execution time is the maximum of the
// compute-bound and memory-bound estimates, scaled by an efficiency factor,
// plus a fixed floor. A kernel may instead pin its duration exactly with
// Fixed (used by workload models calibrated against published totals).
type KernelCost struct {
	FLOPs      float64       // floating point operations (double unless SP)
	SP         bool          // single precision
	MemBytes   float64       // device memory traffic in bytes
	Efficiency float64       // fraction of peak achieved; 0 means 1.0
	Floor      time.Duration // minimum duration (scheduling granularity)
	Fixed      time.Duration // if > 0, exact duration; other fields ignored
}

// Duration returns the kernel's execution time on the given device.
func (k KernelCost) Duration(g GPUSpec) time.Duration {
	if k.Fixed > 0 {
		return k.Fixed
	}
	eff := k.Efficiency
	if eff <= 0 {
		eff = 1.0
	}
	peak := g.PeakDPGFlops
	if k.SP {
		peak = g.PeakSPGFlops
	}
	tc := k.FLOPs / (peak * 1e9 * eff)
	tm := k.MemBytes / (g.MemBandwidthGBs * 1e9 * eff)
	sec := math.Max(tc, tm)
	d := time.Duration(sec * float64(time.Second))
	if d < k.Floor {
		d = k.Floor
	}
	if d <= 0 {
		d = time.Microsecond
	}
	return d
}

// TransferDir identifies a PCIe transfer direction.
type TransferDir int

const (
	HostToDevice TransferDir = iota
	DeviceToHost
	DeviceToDevice
)

func (d TransferDir) String() string {
	switch d {
	case HostToDevice:
		return "H2D"
	case DeviceToHost:
		return "D2H"
	case DeviceToDevice:
		return "D2D"
	}
	return "?"
}

// TransferCost returns the time to move n bytes across PCIe (or within the
// device for DeviceToDevice). pinned selects the page-locked host buffer
// bandwidth.
func TransferCost(g GPUSpec, dir TransferDir, n int64, pinned bool) time.Duration {
	if n < 0 {
		n = 0
	}
	var bw float64
	switch dir {
	case HostToDevice:
		bw = g.PCIeH2DGBs
	case DeviceToHost:
		bw = g.PCIeD2HGBs
	case DeviceToDevice:
		// Device-internal copy: read + write through device memory.
		bw = g.MemBandwidthGBs / 2
	}
	if pinned && dir != DeviceToDevice {
		bw *= g.PinnedFactor
	}
	sec := float64(n) / (bw * 1e9)
	return g.PCIeLatency + time.Duration(sec*float64(time.Second))
}
