package perfmodel

import "time"

// NetSpec is a Hockney (alpha-beta) model of the cluster interconnect with
// separate intra-node parameters (shared-memory transport) and a simple
// endpoint-contention term that makes rooted collectives with many senders
// (e.g. MPI_Gather) degrade super-linearly, as observed for PARATEC at 256
// processes in the paper (attributed there to NUMA effects).
type NetSpec struct {
	Name string

	// Inter-node (network) path.
	Latency      time.Duration // alpha
	BandwidthGBs float64       // beta^-1, per-link

	// Intra-node (shared memory) path.
	LocalLatency      time.Duration
	LocalBandwidthGBs float64

	// Endpoint contention: when f concurrent flows target one endpoint,
	// effective bandwidth divides by 1 + ContentionFactor*(f-1).
	ContentionFactor float64
}

// QDRInfiniBand returns parameters representative of the Dirac cluster's
// QDR InfiniBand fabric (~32 Gbit/s usable, ~1.5 us MPI latency) with
// shared-memory transport inside a node.
func QDRInfiniBand() NetSpec {
	return NetSpec{
		Name:              "QDR InfiniBand",
		Latency:           1500 * time.Nanosecond,
		BandwidthGBs:      3.2,
		LocalLatency:      400 * time.Nanosecond,
		LocalBandwidthGBs: 5.0,
		ContentionFactor:  0.30,
	}
}

// PointToPoint returns the time for one message of n bytes between two
// ranks. sameNode selects the shared-memory path.
func (ns NetSpec) PointToPoint(n int64, sameNode bool) time.Duration {
	return ns.contended(n, sameNode, 1)
}

// Contended returns the time for one message of n bytes when flows
// concurrent messages converge on the receiving endpoint.
func (ns NetSpec) Contended(n int64, sameNode bool, flows int) time.Duration {
	return ns.contended(n, sameNode, flows)
}

func (ns NetSpec) contended(n int64, sameNode bool, flows int) time.Duration {
	if n < 0 {
		n = 0
	}
	if flows < 1 {
		flows = 1
	}
	lat, bw := ns.Latency, ns.BandwidthGBs
	if sameNode {
		lat, bw = ns.LocalLatency, ns.LocalBandwidthGBs
	}
	bw /= 1 + ns.ContentionFactor*float64(flows-1)
	sec := float64(n) / (bw * 1e9)
	return lat + time.Duration(sec*float64(time.Second))
}
