package ipmgo

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/faultsim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/ipmparse"
	"ipmgo/internal/parallel"
	"ipmgo/internal/profstore"
	"ipmgo/internal/telemetry"
	"ipmgo/internal/workloads"
)

// queueFlush is one flush-heuristic setting under test: a depth trigger,
// a timer trigger, or both (the defaults).
type queueFlush struct {
	name     string
	depth    int
	interval time.Duration
}

// queueFlushSettings spans the heuristic space: immediate hand-off,
// depth-only batching, timer-only batching, and the defaults.
var queueFlushSettings = []queueFlush{
	{"depth1", 1, -1},
	{"depth8-timer-off", 8, -1},
	{"timer-only", 1 << 20, 5 * time.Microsecond},
	{"defaults", 0, 0},
}

// runQueueScenario runs the fault-demo workload on 4 ranks with the
// command-queue layer enabled and returns the result plus the rendered
// banner and XML log.
func runQueueScenario(t *testing.T, q queueFlush, planJSON string) (*cluster.Result, []byte, []byte) {
	t.Helper()
	cfg := cluster.Dirac(4, 1)
	cfg.GPU.ContextInit = 0
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	cfg.Queue = true
	cfg.QueueFlushDepth = q.depth
	cfg.QueueFlushInterval = q.interval
	cfg.Command = "./faultdemo"
	if planJSON != "" {
		plan, err := faultsim.Parse([]byte(planJSON))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = plan
	}
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		workloads.FaultDemo(env, workloads.DefaultFaultDemo())
	})
	if err != nil {
		t.Fatal(err)
	}
	var banner, xml bytes.Buffer
	if err := ipm.WriteBanner(&banner, res.Profile, ipm.BannerOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := ipm.WriteXML(&xml, res.Profile); err != nil {
		t.Fatal(err)
	}
	return res, banner.Bytes(), xml.Bytes()
}

// TestQueueDeterminism asserts the acceptance property of the queue
// layer: at every flush setting the run is byte-identical across repeats
// and across -j worker counts. Different settings legitimately produce
// different schedules; identical settings must produce identical bytes.
func TestQueueDeterminism(t *testing.T) {
	for _, q := range queueFlushSettings {
		q := q
		t.Run(q.name, func(t *testing.T) {
			_, banner0, xml0 := runQueueScenario(t, q, faultPlanRankDeath)
			_, banner1, xml1 := runQueueScenario(t, q, faultPlanRankDeath)
			if !bytes.Equal(banner0, banner1) {
				t.Error("banner differs between identical queued runs")
			}
			if !bytes.Equal(xml0, xml1) {
				t.Error("XML log differs between identical queued runs")
			}
			run := func(workers int) [][]byte {
				out := make([][]byte, 4)
				if err := parallel.RunAll(4, workers, func(i int) error {
					_, _, xml := runQueueScenario(t, q, faultPlanRankDeath)
					out[i] = xml
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				return out
			}
			seq, par := run(1), run(4)
			for i := range seq {
				if !bytes.Equal(seq[i], par[i]) {
					t.Errorf("replica %d differs between -j 1 and -j 4", i)
				}
				if !bytes.Equal(seq[i], xml0) {
					t.Errorf("replica %d differs from the reference run", i)
				}
			}
		})
	}
}

// TestQueueDeviceLossDrains pins the failure-path contract: a sticky
// device loss with commands still queued drains them as errors — the
// rank dies, the survivors finish, nothing hangs. Both the fail-loud
// and the hung-device (watchdog) variants must terminate.
func TestQueueDeviceLossDrains(t *testing.T) {
	const lossPlan = `{
		"seed": 7,
		"faults": [{"type": "cuda", "rank": 2, "at": "60ms", "code": "device-lost"}]
	}`
	q := queueFlush{"defaults", 0, 0}
	res, _, xml0 := runQueueScenario(t, q, lossPlan)
	if res.Truncated != "" {
		t.Fatalf("queued run truncated: %s", res.Truncated)
	}
	// The workload tolerates CUDA failures: rank 2 survives, but every
	// call after the loss — including the drained queue submissions —
	// failed loudly and was error-counted in its profile.
	if res.FaultsInjected < 1 {
		t.Fatalf("FaultsInjected = %d, want >= 1", res.FaultsInjected)
	}
	if res.Profile.TotalErrors() == 0 {
		t.Error("no error-counted calls despite a lost device")
	}
	_, _, xml1 := runQueueScenario(t, q, lossPlan)
	if !bytes.Equal(xml0, xml1) {
		t.Error("device-loss queued run not byte-identical")
	}

	// Hung variant: without the queue this loss silences completions and
	// only the watchdog rescues the rank (TestWatchdogRecoversHungDevice).
	// With the queue, the next flush sees the lost device and fails the
	// sync loudly — the rank drains its commands as errors and finishes
	// well before the 150ms watchdog deadline instead of hanging on it.
	const hangPlan = `{
		"seed": 3,
		"watchdog": {"interval": "20ms", "hang_timeout": "150ms"},
		"faults": [
			{"type": "cuda", "rank": 3, "at": "60ms", "code": "device-lost", "call": "cudaStreamSynchronize", "hang": true}
		]
	}`
	res, _, _ = runQueueScenario(t, q, hangPlan)
	if res.Truncated != "" {
		t.Fatalf("queued run hung despite the loss-aware flush: %s", res.Truncated)
	}
	if res.FaultsInjected < 1 {
		t.Fatalf("hang fault never fired (FaultsInjected = %d)", res.FaultsInjected)
	}
	if len(res.Lost) != 0 {
		t.Fatalf("Lost = %+v: the queue should fail loudly, not wait for the watchdog", res.Lost)
	}
	if res.Profile.TotalErrors() == 0 {
		t.Error("no error-counted calls despite a hung device loss")
	}
}

// TestQueueSubmitStallSurfaces drives one queued run through every
// reporting surface the issue names: the XML log and its HTML rendering,
// the profile store's /agg rollup, the Perfetto trace (per-queue submit
// track and depth counters), and the Prometheus registry.
func TestQueueSubmitStallSurfaces(t *testing.T) {
	rec := telemetry.NewRecorder(1 << 16)
	reg := telemetry.NewRegistry()
	cfg := cluster.Dirac(1, 1)
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	cfg.Queue = true
	cfg.Telemetry = rec
	cfg.Metrics = reg
	cfg.Command = "./square"
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		if err := workloads.Square(env, workloads.DefaultSquare()); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Surface 1: the XML report carries the submit attributes, and the
	// profile sums a positive stall (batched launches wait for a trigger).
	if res.Profile.TotalSubmitStall() <= 0 {
		t.Fatal("queued run accumulated no submit stall")
	}
	var xml bytes.Buffer
	if err := ipm.WriteXML(&xml, res.Profile); err != nil {
		t.Fatal(err)
	}
	for _, attr := range []string{"submit_count=", "submit_stall=", "submit_stall_total="} {
		if !strings.Contains(xml.String(), attr) {
			t.Errorf("XML log missing %s", attr)
		}
	}
	jp, _, err := ipmparse.LoadTolerant(bytes.NewReader(xml.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if jp.TotalSubmitStall() != res.Profile.TotalSubmitStall() {
		t.Errorf("reparsed stall %v != live %v", jp.TotalSubmitStall(), res.Profile.TotalSubmitStall())
	}
	var html bytes.Buffer
	if err := ipmparse.WriteHTML(&html, jp); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"submit stall", "submits"} {
		if !strings.Contains(html.String(), want) {
			t.Errorf("HTML report missing %q", want)
		}
	}

	// Surface 2: the profile store ingests the log and rolls the stall up
	// into /agg.
	store := profstore.New()
	if _, err := store.Ingest(xml.Bytes(), "queued", nil); err != nil {
		t.Fatal(err)
	}
	rep := store.Aggregate(profstore.AggOptions{})
	if rep.SubmitStallSeconds <= 0 {
		t.Error("/agg SubmitStallSeconds is zero after ingesting a queued run")
	}
	var launchSubmits int64
	for _, row := range rep.CallSites {
		launchSubmits += row.Submits
	}
	if launchSubmits <= 0 {
		t.Error("/agg call sites carry no submits")
	}

	// Surface 3: the Perfetto trace has the per-queue submit track and a
	// depth counter series.
	var submits int
	for _, s := range rec.Snapshot() {
		if s.Class == telemetry.ClassQueue {
			submits++
			if s.Track != "ctx0/q0" || s.Name != "submit" {
				t.Errorf("queue span = %+v, want submit on ctx0/q0", s)
			}
		}
	}
	if submits == 0 {
		t.Error("no ClassQueue submit spans recorded")
	}
	pts := rec.CounterSnapshot()
	if len(pts) == 0 {
		t.Fatal("no counter points recorded")
	}
	var depthPts, powerPts int
	for _, p := range pts {
		switch {
		case p.Track == "ctx0/q0" && p.Name == "depth":
			depthPts++
		case p.Track == "gpu0" && p.Name == "power_watts":
			powerPts++
		default:
			t.Errorf("counter point = %+v, want queue depth or device power", p)
		}
	}
	if depthPts == 0 {
		t.Error("no queue-depth counter points recorded")
	}
	if powerPts == 0 {
		t.Error("no device power counter points recorded")
	}

	// Surface 4: the Prometheus registry exposes the queue families.
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`ipm_queue_depth{queue="ctx0/q0"}`,
		`ipm_queue_flushes_total{queue="ctx0/q0"}`,
		"ipm_submit_stall_ns_bucket",
		"ipm_submit_stall_ns_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %s:\n%s", want, firstLines(text, 40))
		}
	}
}
