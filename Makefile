# Build/verify/bench entry points for the ipmgo reproduction.
#
# `make verify` is the tier-1 chain from ROADMAP.md; `make race` covers
# the concurrent simulation paths introduced with the parallel ensemble
# driver; `make bench` records the tier-1 benchmark suite (with
# allocation counts) into a JSON snapshot for cross-PR comparison.

GO ?= go
BENCH_OUT ?= BENCH_pr2.json
BENCH_BASE ?= BENCH_pr1.json
BENCH_PATTERN ?= BenchmarkObserveHot|BenchmarkTableUpdate|BenchmarkMapUpdateManyKeys|BenchmarkAblationHashTable|BenchmarkEnsembleParallel|BenchmarkObserveTelemetry

.PHONY: build vet test race verify bench experiments trace clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled pass over the packages that run simulations concurrently:
# the worker pool itself, the ensemble experiments that fan out on it,
# and the core packages those simulations exercise.
race:
	$(GO) test -race ./internal/parallel ./internal/experiments ./internal/cluster ./internal/ipm ./internal/telemetry

verify: build vet test

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem ./... | $(GO) run ./cmd/benchjson -o $(BENCH_OUT) -compare $(BENCH_BASE)

experiments:
	$(GO) run ./cmd/experiments -quick

# Produce a sample Perfetto-loadable timeline trace from the square
# workload (open results/square_trace.json in https://ui.perfetto.dev).
trace:
	mkdir -p results
	$(GO) run ./cmd/ipmrun -trace results/square_trace.json square

clean:
	rm -f $(BENCH_OUT)
