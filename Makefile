# Build/verify/bench entry points for the ipmgo reproduction.
#
# `make verify` is the tier-1 chain from ROADMAP.md; `make race` covers
# the concurrent simulation paths introduced with the parallel ensemble
# driver; `make bench` records the tier-1 benchmark suite (with
# allocation counts) into a JSON snapshot for cross-PR comparison.

GO ?= go
BENCH_OUT ?= BENCH_pr10.json
BENCH_BASE ?= BENCH_pr9.json
BENCH_PATTERN ?= BenchmarkObserveHot|BenchmarkTableUpdate|BenchmarkMapUpdateManyKeys|BenchmarkAblationHashTable|BenchmarkEnsembleParallel|BenchmarkObserveTelemetry|BenchmarkProfstoreIngest|BenchmarkProfstoreAgg|BenchmarkDESScheduleRun|BenchmarkSpanRecord|BenchmarkQueueSubmit|BenchmarkClusterIngest|BenchmarkClusterAgg

.PHONY: build vet test race race-faults serve serve-load serve-e2e soak soak-short soak-cluster soak-cluster-short fuzz verify bench bench-check profile experiments trace faults clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled pass over the packages that run simulations concurrently:
# the worker pool itself, the ensemble experiments that fan out on it,
# and the core packages those simulations exercise (including the DES
# event pool the whole simulator schedules through).
race:
	$(GO) test -race ./internal/des ./internal/parallel ./internal/experiments ./internal/cluster ./internal/ipm ./internal/telemetry ./internal/profstore ./internal/cmdqueue ./internal/storecluster

# Race-enabled pass over the fault-injection machinery: the end-to-end
# fault scenarios (rank death, hung-device watchdog, straggler skew,
# monitor panic) plus the packages that implement them.
race-faults:
	$(GO) test -race -run 'RankDeath|Watchdog|Straggler|MonitorPanic' .
	$(GO) test -race ./internal/faultsim ./internal/mpisim ./internal/gpusim ./internal/ipmparse

# Start the center-wide profile store (POST /ingest, GET /agg, /jobs,
# /regress, /metrics) with a write-ahead log for restart recovery.
serve:
	mkdir -p results
	$(GO) run ./cmd/ipmserve -addr :8080 -wal results/profiles.wal

# Hammer an in-process ipmserve with concurrent synthetic ingest+query
# traffic and verify deterministic output (see ipmserve -selftest).
serve-load:
	$(GO) run ./cmd/ipmserve -selftest -selftest-jobs 200

# End-to-end over real HTTP, race-enabled: ingest the sample profile
# from results/ and pin /agg to a golden, then the 120-job concurrent
# load/recovery scenario.
serve-e2e:
	$(GO) test -race -run ServeE2E .

# Kill/restart durability soak: ipmserve re-execs itself as a child
# server over a WAL, sustains concurrent ingest, SIGKILLs the child
# mid-ingest N times, and gates on byte-identical /agg + /regress vs a
# never-killed reference and zero lost acknowledged jobs. `soak-short`
# is the bounded CI variant wired into `make verify`.
soak:
	$(GO) run ./cmd/ipmserve -soak -soak-jobs 400 -soak-cycles 6 -soak-timeout 120s

soak-short:
	$(GO) run ./cmd/ipmserve -soak -soak-jobs 80 -soak-cycles 3 -soak-timeout 30s

# Cluster kill/restart soak: N ipmserve members in cluster mode, each
# over its own WAL, with rotating members SIGKILLed mid-ingest while
# workers retry through the surviving routers. Gates on zero lost
# acknowledged jobs and /agg + /jobs + /regress byte-identical from
# EVERY member to a never-killed single-node reference.
# `soak-cluster-short` is the bounded CI variant wired into `make
# verify` (3 members, one kill cycle, well under 30s).
soak-cluster:
	$(GO) run ./cmd/ipmserve -soak-cluster -soak-members 3 -soak-replicas 2 -soak-jobs 240 -soak-cycles 4 -soak-timeout 120s

soak-cluster-short:
	$(GO) run ./cmd/ipmserve -soak-cluster -soak-members 3 -soak-replicas 2 -soak-jobs 60 -soak-cycles 1 -soak-timeout 30s

# Short native-fuzz pass over both parser entry points (strict and
# tolerant), the streaming-scanner differential, and the framed-WAL
# replay path; longer sessions:
# go test -fuzz FuzzScanVsParse ./internal/profstore
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/ipmparse
	$(GO) test -run '^$$' -fuzz FuzzTolerant -fuzztime $(FUZZTIME) ./internal/ipmparse
	$(GO) test -run '^$$' -fuzz FuzzScanVsParse -fuzztime $(FUZZTIME) ./internal/profstore
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) ./internal/profstore
	$(GO) test -run '^$$' -fuzz FuzzRollupWire -fuzztime $(FUZZTIME) ./internal/profstore

verify: build vet test race-faults serve-e2e soak-short soak-cluster-short fuzz bench-check

# -p 1 serialises the per-package test binaries: the ensemble benchmarks
# saturate all cores, and letting them run beside the nanosecond-scale
# hot-path benchmarks inflates the latter by double-digit percentages.
# -count runs each benchmark BENCH_COUNT times; benchjson keeps the
# fastest repetition (the noise floor) for the snapshot.
BENCH_COUNT ?= 5
bench:
	$(GO) test -p 1 -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) ./... | $(GO) run ./cmd/benchjson -o $(BENCH_OUT) -compare $(BENCH_BASE)

# Like bench, but a CI gate: fail (exit 3) if any benchmark regressed
# more than BENCH_THRESHOLD percent in ns/op or allocs/op against the
# committed PR-10 snapshot. Writes its measurements to results/ so it
# never clobbers the committed baseline. The threshold is forgiving
# because shared CI boxes jitter; the min-of-BENCH_COUNT noise floor
# (see cmd/benchjson) absorbs most of it.
BENCH_THRESHOLD ?= 30
BENCH_CHECK_BASE ?= BENCH_pr10.json
bench-check:
	mkdir -p results
	$(GO) test -p 1 -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) ./... | $(GO) run ./cmd/benchjson -o results/bench_check.json -compare $(BENCH_CHECK_BASE) -threshold $(BENCH_THRESHOLD)

# Capture CPU + allocation profiles of the heaviest bundled workload
# (an HPL run) for pprof analysis; see EXPERIMENTS.md "Profiling the
# simulator" for the reading recipe.
PROFILE_WORKLOAD ?= hpl
profile:
	mkdir -p results
	$(GO) run ./cmd/ipmrun -cpuprofile results/cpu.pprof -memprofile results/allocs.pprof \
		-nodes 4 $(PROFILE_WORKLOAD) > /dev/null
	@echo "profiles: results/cpu.pprof results/allocs.pprof"
	@echo "read with: go tool pprof -top results/cpu.pprof"

experiments:
	$(GO) run ./cmd/experiments -quick

# Produce a sample Perfetto-loadable timeline trace from the square
# workload (open results/square_trace.json in https://ui.perfetto.dev).
trace:
	mkdir -p results
	$(GO) run ./cmd/ipmrun -trace results/square_trace.json square

# Produce a sample degraded profile: rank 2 of 4 dies mid-run, the
# survivors finish, and the banner/XML carry the degraded-fidelity
# markers (see EXPERIMENTS.md "Rank-death run").
faults:
	mkdir -p results
	$(GO) run ./cmd/ipmrun -nodes 4 -faults testdata/faults/rankdeath.json \
		-xml results/faultdemo_rankdeath.xml faultdemo \
		> results/faultdemo_rankdeath.banner.txt
	$(GO) run ./cmd/ipmparse results/faultdemo_rankdeath.xml > /dev/null

clean:
	rm -f results/bench_check.json results/cpu.pprof results/allocs.pprof
