// Libmonitor: monitoring accelerated numerical libraries (paper Section
// III-D).
//
// An application offloads dgemm through the CUBLAS thunking wrappers at
// several matrix sizes. IPM's library interposition records every
// cublas* call with the operation size in the signature's bytes
// attribute, so the report can correlate achieved performance with
// operand size — here we print the transfer-vs-compute balance per size,
// showing the crossover where offloading starts to pay (the analysis the
// paper applies to PARATEC).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"

	"ipmgo/internal/cublas"
)

func main() {
	sizes := []int{64, 128, 256, 512, 1024}

	cfg := cluster.Dirac(1, 1)
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	cfg.Command = "./gemmbench"

	type sample struct {
		size              int
		setTime, gemmTime time.Duration
		kernelTime        time.Duration
		verified          bool
	}
	var samples []sample

	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		rng := rand.New(rand.NewSource(11))
		for _, n := range sizes {
			a := make([]float64, n*n)
			b := make([]float64, n*n)
			c := make([]float64, n*n)
			for i := range a {
				a[i] = rng.Float64()
				b[i] = rng.Float64()
			}
			before := snapshot(env)
			if err := cublas.DgemmThunk(env.BLAS, 'N', 'N', n, n, n, 1, a, n, b, n, 0, c, n); err != nil {
				panic(err)
			}
			after := snapshot(env)

			// Verify one element against a host dot product.
			var want float64
			for l := 0; l < n; l++ {
				want += a[0+l*n] * b[l+0*n]
			}
			ok := abs(c[0]-want) < 1e-9*float64(n)

			samples = append(samples, sample{
				size:       n,
				setTime:    after.set - before.set + after.get - before.get,
				gemmTime:   after.gemm - before.gemm,
				kernelTime: after.kernel - before.kernel,
				verified:   ok,
			})
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CUBLAS thunking dgemm under IPM: transfer vs compute by operand size")
	fmt.Printf("%8s %16s %16s %16s %10s\n", "n", "set+get (ms)", "gemm call (ms)", "GPU kernel (ms)", "verified")
	for _, s := range samples {
		fmt.Printf("%8d %16.3f %16.3f %16.3f %10v\n", s.size,
			ms(s.setTime), ms(s.gemmTime), ms(s.kernelTime), s.verified)
		if !s.verified {
			log.Fatal("dgemm result verification failed")
		}
	}

	// The bytes attribute lets the analysis group the same call by size.
	fmt.Println("\nIPM hash-table signatures for cublasSetMatrix (bytes attribute = operand size):")
	for _, r := range res.Profile.Ranks {
		for _, e := range r.Entries {
			if e.Sig.Name == "cublasSetMatrix" {
				fmt.Printf("  cublasSetMatrix bytes=%-10d count=%d total=%.3fms\n",
					e.Sig.Bytes, e.Stats.Count, ms(e.Stats.Total))
			}
		}
	}
}

type snap struct{ set, get, gemm, kernel time.Duration }

func snapshot(env *cluster.Env) snap {
	var s snap
	for _, e := range env.IPM.Table().Entries() {
		switch e.Sig.Name {
		case "cublasSetMatrix":
			s.set += e.Stats.Total
		case "cublasGetMatrix":
			s.get += e.Stats.Total
		case "cublasDgemm":
			s.gemm += e.Stats.Total
		case ipm.ExecKernelName(0, "dgemm_nn_kernel"):
			s.kernel += e.Stats.Total
		}
	}
	return s
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
