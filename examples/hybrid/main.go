// Hybrid: the paper's headline scenario — one IPM profile covering every
// level of parallelism at once. Four MPI ranks each run OpenMP-threaded
// host physics (8 cores per Dirac node), offload a solver kernel to the
// node's GPU, reduce across ranks, and checkpoint to the shared
// filesystem. A single monitored run yields MPI, OpenMP, CUDA, GPU-kernel
// and file-I/O events in one event inventory — the "holistic picture of
// application behaviour" that single-kernel tools cannot provide.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/cudart"
	"ipmgo/internal/des"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/ipmomp"
	"ipmgo/internal/mpisim"
	"ipmgo/internal/perfmodel"
)

const (
	steps    = 10
	nthreads = 8 // cores per Dirac node
)

var solver = &cudart.Func{Name: "implicitSolve", FixedCost: perfmodel.KernelCost{Fixed: 12 * time.Millisecond}}

func app(env *cluster.Env) {
	d, err := env.CUDA.Malloc(8 << 20)
	if err != nil {
		panic(err)
	}
	buf := make([]byte, 64<<10)
	for step := 0; step < steps; step++ {
		// Threaded host physics; the triangular cost profile leaves the
		// team imbalanced, which IPM books under @OMP_IDLE.
		if _, err := env.Parallel("physics", nthreads, func(tid int, p *des.Proc) {
			p.Sleep(time.Duration(4+tid) * time.Millisecond)
		}); err != nil {
			panic(err)
		}
		// GPU offload.
		if err := env.CUDA.LaunchKernel(solver, cudart.Dim3{X: 256}, cudart.Dim3{X: 128}, 0); err != nil {
			panic(err)
		}
		if err := env.CUDA.Memcpy(cudart.HostPtr(buf), cudart.DevicePtr(d), int64(len(buf)), cudart.MemcpyDeviceToHost); err != nil {
			panic(err)
		}
		// Global residual.
		recv := make([]byte, 8)
		if err := env.MPI.Allreduce(mpisim.Float64Bytes([]float64{1}), recv, mpisim.OpSum); err != nil {
			panic(err)
		}
	}
	// Rank 0 checkpoints.
	if env.Rank == 0 {
		f, err := env.FS.Open("/scratch/hybrid.ckpt", true)
		if err != nil {
			panic(err)
		}
		if _, err := f.Write(make([]byte, 16<<20)); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
	}
	env.MPI.Barrier()
}

func main() {
	cfg := cluster.Dirac(4, 1)
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	cfg.Command = "./hybrid.ipm"
	res, err := cluster.Run(cfg, app)
	if err != nil {
		log.Fatal(err)
	}
	jp := res.Profile

	if err := ipm.WriteBanner(os.Stdout, jp, ipm.BannerOptions{Full: true, MaxRows: 14}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nOne profile, every level of parallelism:")
	rows := []struct{ label, name string }{
		{"OpenMP region", ipmomp.RegionName("physics")},
		{"OpenMP barrier idle", ipmomp.IdleName},
		{"GPU kernel", ipm.ExecKernelName(0, "implicitSolve")},
		{"CUDA host idle", ipm.HostIdleName},
		{"MPI reduction", "MPI_Allreduce"},
		{"checkpoint write", "fwrite"},
	}
	for _, r := range rows {
		s := jp.FuncSpread(r.name)
		fmt.Printf("  %-22s %-34s %8.3fs total\n", r.label, r.name, s.Total.Seconds())
		if s.Total == 0 {
			log.Fatalf("expected %s to be monitored", r.name)
		}
	}
}
