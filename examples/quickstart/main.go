// Quickstart: the paper's Fig. 3 example under IPM monitoring.
//
// A single host process allocates device memory, copies an array to the
// simulated GPU, launches a (deliberately inefficient) squaring kernel
// through the CUDA 3.x ConfigureCall/SetupArgument/Launch triple, and
// copies the result back. The program runs three times with progressively
// more monitoring enabled, reproducing the banners of the paper's
// Figs. 4, 5 and 6:
//
//  1. host-side timing only: the blocking cudaMemcpy(D2H) silently
//     absorbs the kernel wait;
//  2. +kernel timing: @CUDA_EXEC_STRM00 reveals the time on the GPU;
//  3. +host-idle detection: @CUDA_HOST_IDLE separates the implicit wait
//     from the actual transfer — the missed overlap opportunity.
package main

import (
	"fmt"
	"log"
	"os"

	"ipmgo/internal/cluster"
	"ipmgo/internal/cudart"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/perfmodel"
)

const (
	n      = 100000
	repeat = 10000
)

// square is the CUDA kernel of Fig. 3: each thread squares one element,
// REPEAT times. The cost model reflects its one-thread-per-block launch
// (~1.15 s on the C2050); the body really squares the data once.
var square = &cudart.Func{
	Name: "square",
	FixedCost: perfmodel.KernelCost{
		FLOPs:      float64(n) * float64(repeat),
		Efficiency: 0.868e9 / 515e9,
	},
	Body: func(ctx cudart.LaunchContext) {
		ptr := ctx.Args.Arg(0).(cudart.DevPtr)
		count := ctx.Args.Arg(1).(int)
		b, err := ctx.Dev.Bytes(ptr, gpusim.F64Bytes(count))
		if err != nil {
			return
		}
		v := gpusim.Float64s(b)
		for i := 0; i < count; i++ {
			x := v.At(i)
			v.Set(i, x*x)
		}
	},
}

// app is the unmodified user program: it sees only the cudart.API
// interface and cannot tell whether IPM is interposed.
func app(api cudart.API) ([]float64, error) {
	size := gpusim.F64Bytes(n)
	host := make([]byte, size)
	v := gpusim.Float64s(host)
	for i := 0; i < n; i++ {
		v.Set(i, float64(i%97)/97.0)
	}

	dptr, err := api.Malloc(size)
	if err != nil {
		return nil, err
	}
	if err := api.Memcpy(cudart.DevicePtr(dptr), cudart.HostPtr(host), size, cudart.MemcpyHostToDevice); err != nil {
		return nil, err
	}
	if err := api.ConfigureCall(cudart.Dim3{X: n}, cudart.Dim3{X: 1}, 0, 0); err != nil {
		return nil, err
	}
	if err := api.SetupArgument(dptr, 8, 0); err != nil {
		return nil, err
	}
	if err := api.SetupArgument(n, 8, 8); err != nil {
		return nil, err
	}
	if err := api.Launch(square); err != nil {
		return nil, err
	}
	if err := api.Memcpy(cudart.HostPtr(host), cudart.DevicePtr(dptr), size, cudart.MemcpyDeviceToHost); err != nil {
		return nil, err
	}
	if err := api.Free(dptr); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	v.CopyOut(out)
	return out, nil
}

func runOnce(title string, opts ipmcuda.Options) {
	cfg := cluster.Dirac(1, 1)
	cfg.Monitor = true
	cfg.CUDA = opts
	cfg.Command = "./cuda.ipm"
	var result []float64
	res, err := cluster.Run(cfg, func(env *cluster.Env) {
		r, err := app(env.CUDA)
		if err != nil {
			panic(err)
		}
		result = r
	})
	if err != nil {
		log.Fatal(err)
	}
	// Verify the kernel really computed (x declared as a float64 variable
	// so the comparison uses runtime float64 semantics, not exact
	// constant arithmetic).
	var x float64 = 5.0 / 97.0
	want := x * x
	if result[5] != want {
		log.Fatalf("kernel result wrong: %v != %v", result[5], want)
	}
	fmt.Printf("\n=== %s ===\n", title)
	if err := ipm.WriteBanner(os.Stdout, res.Profile, ipm.BannerOptions{}); err != nil {
		log.Fatal(err)
	}
}

func main() {
	runOnce("Fig. 4: host-side timing only", ipmcuda.Options{})
	runOnce("Fig. 5: + GPU kernel timing", ipmcuda.Options{KernelTiming: true})
	runOnce("Fig. 6: + implicit host blocking", ipmcuda.Options{KernelTiming: true, HostIdle: true})
	fmt.Println("\nresult verified: device kernel squared the array correctly")
}
