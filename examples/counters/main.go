// Counters: GPU hardware performance counters through the PAPI-style
// component (the paper's first future-work item).
//
// Timing alone says a kernel took 2 ms; counters say why. This example
// runs a compute-bound dgemm and a bandwidth-bound daxpy on the simulated
// C2050, reads flop and DRAM counters through an EventSet, and derives
// each kernel's achieved GFlop/s and GB/s — placing both on the roofline
// without any source changes.
package main

import (
	"fmt"
	"log"

	"ipmgo/internal/cublas"
	"ipmgo/internal/cudart"
	"ipmgo/internal/des"
	"ipmgo/internal/gpucounters"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/perfmodel"
)

func main() {
	eng := des.NewEngine()
	dev := gpusim.NewDevice(eng, perfmodel.TeslaC2050())
	comp := gpucounters.Attach(dev)

	es, err := comp.NewEventSet(
		gpucounters.FlopCountDP,
		gpucounters.DramReadBytes,
		gpucounters.DramWriteB,
		gpucounters.KernelCount,
		gpucounters.Occupancy,
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := es.Start(); err != nil {
		log.Fatal(err)
	}

	const n = 512
	eng.Spawn("host", func(p *des.Proc) {
		rt := cudart.NewRuntime(p, dev, cudart.Options{})
		h := cublas.NewHandle(rt)

		a, _ := h.Alloc(n*n, 8)
		b, _ := h.Alloc(n*n, 8)
		c, _ := h.Alloc(n*n, 8)
		if err := h.Dgemm('N', 'N', n, n, n, 1, a, n, b, n, 0, c, n); err != nil {
			panic(err)
		}
		if err := h.Daxpy(n*n, 2.0, a, 1, b, 1); err != nil {
			panic(err)
		}
		rt.ThreadSynchronize()
	})
	if err := eng.Run(); err != nil {
		log.Fatal(err)
	}

	vals, err := es.Stop()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EventSet totals over the run:")
	fmt.Printf("  flop_count_dp      : %d\n", vals[0])
	fmt.Printf("  dram_read_bytes    : %d\n", vals[1])
	fmt.Printf("  dram_write_bytes   : %d\n", vals[2])
	fmt.Printf("  kernel_invocations : %d\n", vals[3])
	fmt.Printf("  achieved_occupancy : %.2f %%\n", float64(vals[4])/100)

	fmt.Println("\nPer-kernel roofline placement:")
	fmt.Printf("%-18s %12s %12s %12s %14s\n", "kernel", "GFlop/s", "GB/s", "flops/byte", "bound")
	samples := comp.Samples()
	for i, s := range samples {
		var dur float64
		// Recover the duration from active cycles and the clock.
		dur = float64(s.Values[gpucounters.ActiveCycles]) / (perfmodel.TeslaC2050().ClockGHz * 1e9)
		flops := float64(s.Values[gpucounters.FlopCountDP])
		bytes := float64(s.Values[gpucounters.DramReadBytes] + s.Values[gpucounters.DramWriteB])
		gflops := flops / dur / 1e9
		gbs := bytes / dur / 1e9
		intensity := flops / bytes
		bound := "memory"
		// C2050 ridge point: 515 GF / 144 GB/s = 3.6 flops/byte.
		if intensity > 515.0/144.0 {
			bound = "compute"
		}
		fmt.Printf("%-18s %12.1f %12.1f %12.2f %14s\n", s.Kernel, gflops, gbs, intensity, bound)
		_ = i
	}

	// Sanity: dgemm must classify compute-bound, daxpy memory-bound.
	if len(samples) != 2 {
		log.Fatalf("expected 2 kernel samples, got %d", len(samples))
	}
	dgemm, daxpy := samples[0], samples[1]
	di := float64(dgemm.Values[gpucounters.FlopCountDP]) /
		float64(dgemm.Values[gpucounters.DramReadBytes]+dgemm.Values[gpucounters.DramWriteB])
	ai := float64(daxpy.Values[gpucounters.FlopCountDP]) /
		float64(daxpy.Values[gpucounters.DramReadBytes]+daxpy.Values[gpucounters.DramWriteB])
	if di <= 515.0/144.0 || ai >= 515.0/144.0 {
		log.Fatalf("roofline classification wrong: dgemm %.2f, daxpy %.2f flops/byte", di, ai)
	}
	fmt.Println("\nclassification verified: dgemm compute-bound, daxpy memory-bound")
}
