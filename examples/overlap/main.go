// Overlap: using IPM's @CUDA_HOST_IDLE metric to find and fix a missed
// CPU/GPU overlap opportunity (paper Section III-C).
//
// The "naive" pipeline launches a kernel and immediately issues a
// blocking cudaMemcpy for the result: the host silently idles for the
// whole kernel. IPM attributes that wait to @CUDA_HOST_IDLE, telling the
// developer the transfer is a tuning opportunity. The "overlapped"
// pipeline restructures the loop to do host work between launch and
// readback and uses an async copy plus explicit synchronisation —
// host idle drops to zero and the wallclock shrinks accordingly.
package main

import (
	"fmt"
	"log"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/cudart"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/perfmodel"
)

const (
	iterations = 20
	kernelTime = 40 * time.Millisecond
	hostWork   = 35 * time.Millisecond
	bufBytes   = 4 << 20
)

var work = &cudart.Func{Name: "stencil", FixedCost: perfmodel.KernelCost{Fixed: kernelTime}}

func naive(env *cluster.Env) {
	d, err := env.CUDA.Malloc(bufBytes)
	if err != nil {
		panic(err)
	}
	buf := make([]byte, bufBytes)
	for i := 0; i < iterations; i++ {
		if err := env.CUDA.LaunchKernel(work, cudart.Dim3{X: 256}, cudart.Dim3{X: 256}, 0); err != nil {
			panic(err)
		}
		// Blocking copy right after the async launch: the host idles for
		// the whole kernel inside cudaMemcpy.
		if err := env.CUDA.Memcpy(cudart.HostPtr(buf), cudart.DevicePtr(d), bufBytes, cudart.MemcpyDeviceToHost); err != nil {
			panic(err)
		}
		// Host-side post-processing that could have been overlapped.
		env.Compute(hostWork)
	}
}

func overlapped(env *cluster.Env) {
	d, err := env.CUDA.Malloc(bufBytes)
	if err != nil {
		panic(err)
	}
	s, err := env.CUDA.StreamCreate()
	if err != nil {
		panic(err)
	}
	buf, err := env.CUDA.HostAlloc(bufBytes) // pinned for true async copies
	if err != nil {
		panic(err)
	}
	for i := 0; i < iterations; i++ {
		if err := env.CUDA.LaunchKernel(work, cudart.Dim3{X: 256}, cudart.Dim3{X: 256}, s); err != nil {
			panic(err)
		}
		if err := env.CUDA.MemcpyAsync(cudart.PinnedPtr(buf), cudart.DevicePtr(d), bufBytes, cudart.MemcpyDeviceToHost, s); err != nil {
			panic(err)
		}
		// The post-processing of the previous iteration now overlaps the
		// GPU work of this one.
		env.Compute(hostWork)
		if err := env.CUDA.StreamSynchronize(s); err != nil {
			panic(err)
		}
	}
}

func run(title string, app func(*cluster.Env)) *cluster.Result {
	cfg := cluster.Dirac(1, 1)
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	cfg.Command = "./" + title
	res, err := cluster.Run(cfg, app)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func metric(jp *ipm.JobProfile, name string) time.Duration {
	for _, ft := range jp.FuncTotals() {
		if ft.Name == name {
			return ft.Stats.Total
		}
	}
	return 0
}

func main() {
	n := run("naive", naive)
	o := run("overlapped", overlapped)

	nIdle := metric(n.Profile, ipm.HostIdleName)
	oIdle := metric(o.Profile, ipm.HostIdleName)

	fmt.Println("IPM-guided overlap tuning (20 iterations, 40 ms kernel + 35 ms host work)")
	fmt.Printf("%-12s %12s %18s %18s\n", "version", "wallclock", "@CUDA_HOST_IDLE", "@CUDA_EXEC_STRM*")
	fmt.Printf("%-12s %12.3fs %17.3fs %17.3fs\n", "naive",
		n.Wallclock.Seconds(), nIdle.Seconds(),
		(metric(n.Profile, ipm.ExecStreamName(0)) + metric(n.Profile, ipm.ExecStreamName(1))).Seconds())
	fmt.Printf("%-12s %12.3fs %17.3fs %17.3fs\n", "overlapped",
		o.Wallclock.Seconds(), oIdle.Seconds(),
		(metric(o.Profile, ipm.ExecStreamName(0)) + metric(o.Profile, ipm.ExecStreamName(1))).Seconds())
	fmt.Printf("\nspeedup from overlap: %.2fx (host idle eliminated: %v -> %v)\n",
		float64(n.Wallclock)/float64(o.Wallclock), nIdle.Round(time.Millisecond), oIdle.Round(time.Millisecond))

	if oIdle >= nIdle {
		log.Fatal("expected the overlapped version to eliminate host idle time")
	}
	if o.Wallclock >= n.Wallclock {
		log.Fatal("expected the overlapped version to be faster")
	}
}
