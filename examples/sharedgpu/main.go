// Sharedgpu: monitoring MPI tasks that share one GPU (the paper's
// issue (5): "in the shared GPU case, the kernel performance might be
// dramatically different in the production MPI case compared to an
// isolated workstation setting").
//
// The same MPI+CUDA program runs twice on a two-node slice of the
// simulated Dirac cluster: once with one rank per node (each rank owns
// its GPU) and once with four ranks per node (four ranks contend for each
// GPU). IPM's per-rank kernel timing shows the NULL-stream kernels
// serialising under sharing, and the full parallel banner quantifies the
// slowdown — information invisible to single-process tools.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/cudart"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/mpisim"
	"ipmgo/internal/perfmodel"
)

var force = &cudart.Func{Name: "computeForces", FixedCost: perfmodel.KernelCost{Fixed: 25 * time.Millisecond}}

// app: each rank repeatedly launches a kernel, reads back a halo and
// exchanges it with the neighbours.
func app(env *cluster.Env) {
	d, err := env.CUDA.Malloc(1 << 20)
	if err != nil {
		panic(err)
	}
	halo := make([]byte, 4096)
	peer := (env.Rank + 1) % env.Size
	for i := 0; i < 12; i++ {
		if err := env.CUDA.LaunchKernel(force, cudart.Dim3{X: 128}, cudart.Dim3{X: 128}, 0); err != nil {
			panic(err)
		}
		if err := env.CUDA.Memcpy(cudart.HostPtr(halo), cudart.DevicePtr(d), 4096, cudart.MemcpyDeviceToHost); err != nil {
			panic(err)
		}
		req, err := env.MPI.Isend(halo, peer, i)
		if err != nil {
			panic(err)
		}
		rbuf := make([]byte, 4096)
		if _, err := env.MPI.Recv(rbuf, mpisim.AnySource, i); err != nil {
			panic(err)
		}
		if _, err := env.MPI.Wait(req); err != nil {
			panic(err)
		}
	}
	recv := make([]byte, 8)
	if err := env.MPI.Allreduce(mpisim.Float64Bytes([]float64{1}), recv, mpisim.OpSum); err != nil {
		panic(err)
	}
}

func run(ranksPerNode int) *cluster.Result {
	cfg := cluster.Dirac(2, ranksPerNode)
	cfg.Monitor = true
	cfg.CUDA = ipmcuda.Options{KernelTiming: true, HostIdle: true}
	cfg.Command = fmt.Sprintf("./md.ipm (x%d per GPU)", ranksPerNode)
	res, err := cluster.Run(cfg, app)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	exclusive := run(1)
	shared := run(4)

	fmt.Println("=== exclusive GPU: 1 rank per node ===")
	if err := ipm.WriteBanner(os.Stdout, exclusive.Profile, ipm.BannerOptions{Full: true, MaxRows: 6}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== shared GPU: 4 ranks per node ===")
	if err := ipm.WriteBanner(os.Stdout, shared.Profile, ipm.BannerOptions{Full: true, MaxRows: 6}); err != nil {
		log.Fatal(err)
	}

	// The host-idle metric exposes the contention: with four ranks per
	// GPU, each rank's blocking readback also waits behind the other
	// ranks' NULL-stream kernels.
	exIdle := exclusive.Profile.FuncSpread(ipm.HostIdleName)
	shIdle := shared.Profile.FuncSpread(ipm.HostIdleName)
	fmt.Printf("\nper-rank @CUDA_HOST_IDLE: exclusive %.3fs  vs  shared %.3fs (%.1fx)\n",
		exIdle.Avg.Seconds(), shIdle.Avg.Seconds(), float64(shIdle.Avg)/float64(exIdle.Avg))
	fmt.Printf("wallclock: exclusive %.3fs  vs  shared %.3fs\n",
		exclusive.Wallclock.Seconds(), shared.Wallclock.Seconds())
	if shared.Wallclock <= exclusive.Wallclock {
		log.Fatal("expected GPU sharing to slow the run down")
	}
}
