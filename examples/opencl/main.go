// Opencl: IPM's interposition technique applied to OpenCL (the paper's
// second future-work item: "the library-based interposition monitoring
// technique is similarly applicable to OpenCL").
//
// The same vector-scale pipeline runs through the OpenCL host API with
// IPM wrapped around it: every clXxx call is timed, transfers carry their
// direction and byte count, and kernel execution time is recovered from
// OpenCL's native event profiling into @CL_EXEC_QUEUExx pseudo-entries —
// the OpenCL analogue of the CUDA banner in the quickstart example.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"ipmgo/internal/clsim"
	"ipmgo/internal/des"
	"ipmgo/internal/gpusim"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcl"
	"ipmgo/internal/perfmodel"
)

const n = 1 << 16

var saxpy = &clsim.Kernel{
	Name: "saxpy",
	Cost: perfmodel.KernelCost{FLOPs: 2 * n, MemBytes: 24 * n, Efficiency: 0.7},
	Body: func(dev *gpusim.Device, args map[int]any, global, local []int) {
		x, okx := args[0].(gpusim.DevPtr)
		y, oky := args[1].(gpusim.DevPtr)
		a, oka := args[2].(float64)
		if !okx || !oky || !oka {
			return
		}
		xb, err1 := dev.Bytes(x, gpusim.F64Bytes(n))
		yb, err2 := dev.Bytes(y, gpusim.F64Bytes(n))
		if err1 != nil || err2 != nil {
			return
		}
		xv, yv := gpusim.Float64s(xb), gpusim.Float64s(yb)
		for i := 0; i < n; i++ {
			yv.Set(i, a*xv.At(i)+yv.At(i))
		}
	},
}

func main() {
	eng := des.NewEngine()
	dev := gpusim.NewDevice(eng, perfmodel.TeslaC2050())

	var mon *ipm.Monitor
	eng.Spawn("host", func(p *des.Proc) {
		mon = ipm.NewMonitor(0, "dirac1", "./ocl.ipm", p.Now, 0)
		mon.Start()
		cl := ipmcl.Wrap(clsim.CreateContext(p, dev), mon)

		q, err := cl.CreateCommandQueue()
		if err != nil {
			panic(err)
		}
		bufX, _ := cl.CreateBuffer(gpusim.F64Bytes(n))
		bufY, _ := cl.CreateBuffer(gpusim.F64Bytes(n))

		host := make([]byte, gpusim.F64Bytes(n))
		v := gpusim.Float64s(host)
		for i := 0; i < n; i++ {
			v.Set(i, float64(i))
		}
		cl.EnqueueWriteBuffer(q, bufX, true, 0, host)
		cl.EnqueueWriteBuffer(q, bufY, true, 0, host)

		cl.SetKernelArg(saxpy, 0, bufX)
		cl.SetKernelArg(saxpy, 1, bufY)
		cl.SetKernelArg(saxpy, 2, 2.0)
		if _, err := cl.EnqueueNDRangeKernel(q, saxpy, []int{n}, []int{256}); err != nil {
			panic(err)
		}
		out := make([]byte, gpusim.F64Bytes(n))
		cl.EnqueueReadBuffer(q, bufY, true, 0, out)
		cl.Finish(q)
		cl.Flush()
		mon.Stop()

		// Verify: y = 2x + x = 3x.
		ov := gpusim.Float64s(out)
		for i := 0; i < n; i++ {
			if ov.At(i) != 3*float64(i) {
				panic(fmt.Sprintf("y[%d] = %v, want %v", i, ov.At(i), 3*float64(i)))
			}
		}
	})
	if err := eng.RunFor(time.Hour); err != nil {
		log.Fatal(err)
	}

	jp := ipm.NewJobProfile("./ocl.ipm", 1, []ipm.RankProfile{ipm.Snapshot(mon)})
	if err := ipm.WriteBanner(os.Stdout, jp, ipm.BannerOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresult verified: saxpy computed y = 2x + y on the device")
}
