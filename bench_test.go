// Package ipmgo's root benchmark suite: one testing.B benchmark per table
// and figure of the paper (regenerating its data via internal/experiments,
// at the quick scale so `go test -bench .` stays minutes, not hours; run
// cmd/experiments for the full-scale reproduction), plus the ablation
// benchmarks for the design choices DESIGN.md calls out.
//
// Benchmarks report the experiment's headline quantity via
// b.ReportMetric, so `go test -bench . -benchmem` doubles as a regression
// check on the reproduction targets.
package ipmgo

import (
	"fmt"
	"testing"
	"time"

	"ipmgo/internal/cluster"
	"ipmgo/internal/cudart"
	"ipmgo/internal/devmodel"
	"ipmgo/internal/experiments"
	"ipmgo/internal/ipm"
	"ipmgo/internal/ipmcuda"
	"ipmgo/internal/perfmodel"
	"ipmgo/internal/telemetry"
	"ipmgo/internal/workloads"
)

var quick = experiments.Options{Quick: true, Seed: 2011}

// BenchmarkFig4SquareBanner regenerates the host-timing-only banner.
func BenchmarkFig4SquareBanner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5KernelTiming regenerates the kernel-timing banner.
func BenchmarkFig5KernelTiming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6HostIdle regenerates the host-idle banner.
func BenchmarkFig6HostIdle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Timeline regenerates the monitoring timeline.
func BenchmarkFig7Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableIAccuracy regenerates Table I and reports the worst-case
// relative error of IPM's event-based kernel timing.
func BenchmarkTableIAccuracy(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(quick)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.DiffPercent > worst {
				worst = r.DiffPercent
			}
		}
	}
	b.ReportMetric(worst, "worst-diff-%")
}

// BenchmarkFig8Dilation regenerates the HPL dilation ensemble and reports
// the measured monitoring dilation.
func BenchmarkFig8Dilation(b *testing.B) {
	var dil float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(quick)
		if err != nil {
			b.Fatal(err)
		}
		dil = r.DilationPct
	}
	b.ReportMetric(dil, "dilation-%")
}

// BenchmarkFig9HPLProfile regenerates the HPL CUDA+MPI profile.
func BenchmarkFig9HPLProfile(b *testing.B) {
	var idle float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(quick)
		if err != nil {
			b.Fatal(err)
		}
		idle = r.HostIdlePct
	}
	b.ReportMetric(idle, "host-idle-%")
}

// BenchmarkFig10Paratec regenerates the PARATEC scaling sweep and reports
// the MKL->CUBLAS speedup at the base process count.
func BenchmarkFig10Paratec(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(quick)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(rows[0].Wallclock) / float64(rows[1].Wallclock)
	}
	b.ReportMetric(speedup, "cublas-speedup-x")
}

// BenchmarkFig11Amber regenerates the Amber profile and reports the GPU
// utilisation.
func BenchmarkFig11Amber(b *testing.B) {
	var gpu float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(quick)
		if err != nil {
			b.Fatal(err)
		}
		gpu = r.GPUPct
	}
	b.ReportMetric(gpu, "gpu-util-%")
}

// ---- Ablation benchmarks (DESIGN.md) ----

// kernelChurn is a workload that launches many short kernels with D2H
// readbacks — the stress case for the KTT machinery.
func kernelChurn(kernels, kttChecksPerKernel int) func(env *cluster.Env) {
	return func(env *cluster.Env) {
		d, err := env.CUDA.Malloc(4096)
		if err != nil {
			panic(err)
		}
		fn := &cudart.Func{Name: "churn", FixedCost: perfmodel.KernelCost{Fixed: 200 * time.Microsecond}}
		buf := make([]byte, 4096)
		for i := 0; i < kernels; i++ {
			if err := env.CUDA.LaunchKernel(fn, cudart.Dim3{X: 16}, cudart.Dim3{X: 64}, 0); err != nil {
				panic(err)
			}
			if err := env.CUDA.Memcpy(cudart.HostPtr(buf), cudart.DevicePtr(d), 4096, cudart.MemcpyDeviceToHost); err != nil {
				panic(err)
			}
			for j := 0; j < kttChecksPerKernel; j++ {
				if _, err := env.CUDA.GetDevice(); err != nil {
					panic(err)
				}
			}
		}
	}
}

func runMonitoredChurn(b *testing.B, opts ipmcuda.Options) time.Duration {
	b.Helper()
	cfg := cluster.Dirac(1, 1)
	cfg.Monitor = true
	cfg.CUDA = opts
	res, err := cluster.Run(cfg, kernelChurn(500, 4))
	if err != nil {
		b.Fatal(err)
	}
	return res.Wallclock
}

// BenchmarkAblationCompletionPolicy compares the paper's
// check-only-in-D2H policy against checking the KTT on every call
// (rejected in Section III-B as potentially costly). The metric is the
// extra virtual wallclock of the eager policy.
func BenchmarkAblationCompletionPolicy(b *testing.B) {
	var extra float64
	for i := 0; i < b.N; i++ {
		d2hOnly := runMonitoredChurn(b, ipmcuda.Options{KernelTiming: true})
		every := runMonitoredChurn(b, ipmcuda.Options{KernelTiming: true, CheckEveryCall: true})
		extra = 100 * (float64(every) - float64(d2hOnly)) / float64(d2hOnly)
	}
	b.ReportMetric(extra, "eager-extra-%")
}

// BenchmarkAblationEventCorrection measures the accuracy gain of
// subtracting the constant event overhead (the paper's "we are currently
// investigating" improvement) on the scan benchmark, Table I's worst
// case.
func BenchmarkAblationEventCorrection(b *testing.B) {
	scan := workloads.SDKSuite()[7]
	run := func(corr time.Duration) float64 {
		cfg := cluster.Dirac(1, 1)
		cfg.Monitor = true
		cfg.CUDA = ipmcuda.Options{KernelTiming: true, EventOverheadCorrection: corr}
		cfg.CUDAProfile = true
		res, err := cluster.Run(cfg, func(env *cluster.Env) {
			if err := scan.Run(env); err != nil {
				panic(err)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		profiler := res.Profilers[0].TotalKernelTime()
		var ipmTotal time.Duration
		for _, ft := range res.Profile.FuncTotals() {
			if ft.Name == ipm.ExecStreamName(0) {
				ipmTotal = ft.Stats.Total
			}
		}
		d := 100 * (float64(ipmTotal) - float64(profiler)) / float64(profiler)
		if d < 0 {
			d = -d
		}
		return d
	}
	var before, after float64
	for i := 0; i < b.N; i++ {
		before = run(0)
		// Correct for dispatch gap + one event record (see gpusim docs).
		after = run(perfmodel.TeslaC2050().KernelDispatch + perfmodel.TeslaC2050().EventRecordCost)
	}
	b.ReportMetric(before, "uncorrected-diff-%")
	b.ReportMetric(after, "corrected-diff-%")
}

// BenchmarkAblationHostIdle measures the monitoring-cost delta of the
// host-idle feature (one extra StreamSynchronize per blocking transfer).
func BenchmarkAblationHostIdle(b *testing.B) {
	var extra float64
	for i := 0; i < b.N; i++ {
		off := runMonitoredChurn(b, ipmcuda.Options{KernelTiming: true})
		on := runMonitoredChurn(b, ipmcuda.Options{KernelTiming: true, HostIdle: true})
		extra = 100 * (float64(on) - float64(off)) / float64(off)
	}
	b.ReportMetric(extra, "host-idle-extra-%")
}

// BenchmarkAblationKTTSize measures timed-kernel coverage under KTT
// capacity pressure: many kernels in flight with a tiny table.
func BenchmarkAblationKTTSize(b *testing.B) {
	run := func(size int) float64 {
		cfg := cluster.Dirac(1, 1)
		cfg.Monitor = true
		cfg.CUDA = ipmcuda.Options{KernelTiming: true, KTTSize: size}
		burst := func(env *cluster.Env) {
			d, _ := env.CUDA.Malloc(4096)
			fn := &cudart.Func{Name: "burst", FixedCost: perfmodel.KernelCost{Fixed: time.Millisecond}}
			s, _ := env.CUDA.StreamCreate()
			for i := 0; i < 64; i++ {
				env.CUDA.LaunchKernel(fn, cudart.Dim3{X: 1}, cudart.Dim3{X: 1}, s)
			}
			env.CUDA.ThreadSynchronize()
			buf := make([]byte, 4096)
			env.CUDA.Memcpy(cudart.HostPtr(buf), cudart.DevicePtr(d), 4096, cudart.MemcpyDeviceToHost)
		}
		res, err := cluster.Run(cfg, burst)
		if err != nil {
			b.Fatal(err)
		}
		var timed int64
		for _, ft := range res.Profile.FuncTotals() {
			if ft.Name == ipm.ExecStreamName(1) {
				timed = ft.Stats.Count
			}
		}
		return 100 * float64(timed) / 64
	}
	var small, large float64
	for i := 0; i < b.N; i++ {
		small = run(16)
		large = run(1024)
	}
	b.ReportMetric(small, "coverage-ktt16-%")
	b.ReportMetric(large, "coverage-ktt1024-%")
}

// BenchmarkAblationHashTable compares the fixed open-addressing table
// against a plain Go map under the wrapper's update pattern (see also the
// micro-benchmarks in internal/ipm).
func BenchmarkAblationHashTable(b *testing.B) {
	sigs := make([]ipm.Sig, 256)
	for i := range sigs {
		sigs[i] = ipm.Sig{Name: "cudaMemcpy(D2H)", Bytes: int64(i * 4096)}
	}
	obs := ipm.Stats{Count: 1, Total: time.Microsecond, Min: time.Microsecond, Max: time.Microsecond}
	b.Run("open-addressing", func(b *testing.B) {
		t := ipm.NewTable(ipm.DefaultTableSize)
		for i := 0; i < b.N; i++ {
			t.Update(sigs[i&255], obs)
		}
	})
	b.Run("go-map", func(b *testing.B) {
		m := make(map[ipm.Sig]*ipm.Stats)
		for i := 0; i < b.N; i++ {
			sig := sigs[i&255]
			if s, ok := m[sig]; ok {
				s.Merge(obs)
			} else {
				c := obs
				m[sig] = &c
			}
		}
	})
}

// BenchmarkObserveTelemetry measures the monitored hot path with the
// telemetry layer absent and attached. The disabled variant must match
// the sigref path of BenchmarkObserveHot (internal/ipm) — telemetry-off
// costs one untaken branch, no allocations.
func BenchmarkObserveTelemetry(b *testing.B) {
	clock := func() time.Duration { return 0 }
	ref := ipm.NewSigRef("cudaMemcpy(D2H)")
	b.Run("disabled", func(b *testing.B) {
		m := ipm.NewMonitor(0, "host", "bench", clock, 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.ObserveRef(ref, 1<<20, time.Microsecond)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		m := ipm.NewMonitor(0, "host", "bench", clock, 1024)
		m.AttachTelemetry(telemetry.NewRecorder(1 << 16))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.ObserveRef(ref, 1<<20, time.Microsecond)
		}
	})
}

// BenchmarkEnsembleParallel measures the fig8 quick ensemble (24 trials)
// through the bounded worker pool at 1 and 4 workers. On a multi-core
// host the j4 variant approaches a 4x speedup; the trials are fully
// independent simulations, so the pool scales until it runs out of CPUs.
func BenchmarkEnsembleParallel(b *testing.B) {
	for _, j := range []int{1, 4} {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			o := experiments.Options{Quick: true, Seed: 2011, Workers: j}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig8(o); err != nil {
					b.Fatal(err)
				}
			}
		})
		// The same ensemble with the driver command-queue layer between
		// the runtime and the device: the delta prices the queue's
		// batching and submit-stall accounting.
		b.Run(fmt.Sprintf("queue-j%d", j), func(b *testing.B) {
			o := experiments.Options{Quick: true, Seed: 2011, Workers: j, Queue: true}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig8(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The same ensemble on each registered device backend: the delta
	// prices the power model's per-observation energy folds plus the
	// backend's own machine balance (the A100 finishes kernels faster, so
	// its trials simulate fewer virtual-time events).
	for _, d := range devmodel.List() {
		d := d
		b.Run("device-"+d.Name+"-j4", func(b *testing.B) {
			o := experiments.Options{Quick: true, Seed: 2011, Workers: 4, Device: d}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig8(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
